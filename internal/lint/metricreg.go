package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strconv"
	"strings"
)

// MetricregAnalyzer keeps the exposition surface honest: every metric
// name and label key that appears at an observation site (a hand-rolled
// Prometheus Fprintf literal, or a WriteProm call) must appear in a
// package-level `metricFamilies` registration table with a consistent
// label. The tables are unioned across every package in the run — the
// gateway aggregates replica metrics by name, so a drifted spelling
// doesn't fail loudly anywhere at runtime; it just silently stops
// aggregating. That silent divergence is this pass's quarry.
//
// A run with no metricFamilies table anywhere stays silent: packages
// that don't expose metrics have nothing to register.
var MetricregAnalyzer = &Analyzer{
	Name: "metricreg",
	Doc:  "metric names and label keys at observation sites must match the metricFamilies registration tables",
	Run:  runMetricreg,
}

// metricPrefixes marks which literals look like metric names at all.
// Exact prefix arguments (Exporter.WriteProm(w, "siwa_gateway")) are
// skipped — they name a namespace, not a family.
var (
	metricPrefix      = "siwa_"
	metricExactSkips  = map[string]bool{"siwa": true, "siwa_gateway": true}
	histogramSuffixes = []string{"_bucket", "_sum", "_count"}
)

func runMetricreg(pass *Pass) {
	reg := collectMetricFamilies(pass)
	if len(reg) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		registryFile := fileDeclaresMetricFamilies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BasicLit:
				if x.Kind != token.STRING || registryFile {
					return true
				}
				checkMetricLiteral(pass, reg, x)
			case *ast.CallExpr:
				checkWriteProm(pass, reg, x)
			}
			return true
		})
	}
}

// fileDeclaresMetricFamilies reports whether the file holds the
// registration table itself — its keys are the registry, not sites.
func fileDeclaresMetricFamilies(f *ast.File) bool {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if name.Name == "metricFamilies" {
					return true
				}
			}
		}
	}
	return false
}

// collectMetricFamilies unions every package-level
// `var metricFamilies = map[string]string{...}` table in the run and its
// typechecked context (the dependency closure), so linting one package
// still resolves tables its cross-package observation sites check
// against. Key: metric family name; value: its label key ("" = unlabeled).
func collectMetricFamilies(pass *Pass) map[string]string {
	reg := make(map[string]string)
	seen := make(map[string]bool, len(pass.All)+len(pass.Context))
	pkgs := make([]*Package, 0, len(pass.All)+len(pass.Context))
	for _, pkg := range append(append([]*Package{}, pass.All...), pass.Context...) {
		if pkg.Standard || seen[pkg.ImportPath] {
			continue
		}
		seen[pkg.ImportPath] = true
		pkgs = append(pkgs, pkg)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name != "metricFamilies" || i >= len(vs.Values) {
							continue
						}
						cl, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						for _, el := range cl.Elts {
							kv, ok := el.(*ast.KeyValueExpr)
							if !ok {
								continue
							}
							k, okK := stringConst(pass, pkg, kv.Key)
							v, okV := stringConst(pass, pkg, kv.Value)
							if okK && okV {
								reg[k] = v
							}
						}
					}
				}
			}
		}
	}
	return reg
}

// stringConst resolves e to a compile-time string, via the package's
// type info (handles const references, not just literals).
func stringConst(pass *Pass, pkg *Package, e ast.Expr) (string, bool) {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// checkMetricLiteral inspects one string literal for a metric-shaped
// prefix: `siwa_xxx`, `siwa_xxx{label=%q} %d\n`, etc.
func checkMetricLiteral(pass *Pass, reg map[string]string, lit *ast.BasicLit) {
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	name, label, isMetric := splitMetricLiteral(s)
	if !isMetric {
		return
	}
	base := stripHistogramSuffix(name)
	want, registered := reg[base]
	if !registered {
		pass.Reportf(lit.Pos(),
			"add the family to metricFamilies (or fix the spelling at the site)",
			"metric %q is not in the metricFamilies registration table", base)
		return
	}
	if label != "" && label != want {
		if want == "" {
			pass.Reportf(lit.Pos(),
				"register the label key in metricFamilies or drop it at the site",
				"metric %q uses label %q but is registered without labels", base, label)
		} else {
			pass.Reportf(lit.Pos(),
				"use the registered label key consistently at every site",
				"metric %q uses label %q; registered label key is %q", base, label, want)
		}
	}
}

// splitMetricLiteral extracts (family, labelKey) from a literal that
// starts with a metric-shaped token. isMetric is false for everything
// else (including the exact namespace prefixes).
func splitMetricLiteral(s string) (name, label string, isMetric bool) {
	i := 0
	for i < len(s) && (s[i] == '_' || (s[i] >= 'a' && s[i] <= 'z') || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	name = s[:i]
	if len(name) <= len(metricPrefix) || !strings.HasPrefix(name, metricPrefix) || metricExactSkips[name] {
		return "", "", false
	}
	rest := s[i:]
	// A bare name is only a metric site when the literal is exactly the
	// name or clearly an exposition line (followed by '{' or ' ' or "\n").
	if rest != "" && rest[0] != '{' && rest[0] != ' ' && rest[0] != '\n' {
		return "", "", false
	}
	if strings.HasPrefix(rest, "{") {
		if j := strings.IndexByte(rest, '='); j > 1 {
			label = rest[1:j]
		}
	}
	return name, label, true
}

func stripHistogramSuffix(name string) string {
	for _, suf := range histogramSuffixes {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// checkWriteProm validates WriteProm(w, name, labelKey, ...) call sites:
// the separated name/label-key form of an observation site.
func checkWriteProm(pass *Pass, reg map[string]string, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteProm" || len(call.Args) < 2 {
		return
	}
	name, ok := stringConst(pass, pass.Pkg, call.Args[1])
	if !ok || !strings.HasPrefix(name, metricPrefix) || metricExactSkips[name] {
		return
	}
	base := stripHistogramSuffix(name)
	want, registered := reg[base]
	if !registered {
		pass.Reportf(call.Args[1].Pos(),
			"add the family to metricFamilies (or fix the spelling at the site)",
			"metric %q is not in the metricFamilies registration table", base)
		return
	}
	if len(call.Args) >= 3 {
		if label, ok := stringConst(pass, pass.Pkg, call.Args[2]); ok && label != want {
			pass.Reportf(call.Args[2].Pos(),
				"use the registered label key consistently at every site",
				"metric %q uses label %q; registered label key is %q", base, label, want)
		}
	}
}
