package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture loads one golden-fixture directory and runs the given
// analyzers over it.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) *Result {
	t.Helper()
	l := NewLoader("")
	pkg, err := l.LoadDir(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return Run(l.Fset, []*Package{pkg}, analyzers)
}

// wantExp is one `// want `+"`regex`"+` expectation: the diagnostic the
// fixture line must produce.
type wantExp struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

func parseWants(t *testing.T, dir string) []*wantExp {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	var wants []*wantExp
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", path, line, m[1], err)
			}
			wants = append(wants, &wantExp{file: path, line: line, re: re})
		}
		f.Close()
	}
	return wants
}

// checkFixture asserts exact two-way coverage: every unsuppressed
// diagnostic matches a want on its line, every want is hit.
func checkFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	res := runFixture(t, name, analyzers)
	wants := parseWants(t, filepath.Join("testdata", name))
	for _, d := range res.Unsuppressed() {
		found := false
		for _, wt := range wants {
			if wt.file == d.Pos.Filename && wt.line == d.Pos.Line && wt.re.MatchString(d.Message) {
				wt.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for _, wt := range wants {
		if !wt.matched {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", wt.file, wt.line, wt.re)
		}
	}
}

func TestWaitlockFixtures(t *testing.T) {
	checkFixture(t, "waitlock", []*Analyzer{WaitlockAnalyzer})
}

// TestPairupFixtures covers the acceptance gate for the PR-5 bug
// history: both the breaker probe-slot leak and the abandoned
// single-flight leadership shapes must be detected.
func TestPairupFixtures(t *testing.T) {
	checkFixture(t, "pairup", []*Analyzer{PairupAnalyzer})
}

func TestCtxflowFixtures(t *testing.T) {
	checkFixture(t, "ctxflow", []*Analyzer{CtxflowAnalyzer})
}

func TestMetricregFixtures(t *testing.T) {
	checkFixture(t, "metricreg", []*Analyzer{MetricregAnalyzer})
}

func TestErrtaxonomyFixtures(t *testing.T) {
	checkFixture(t, "errtaxonomy", []*Analyzer{ErrtaxonomyAnalyzer})
}

// TestPairupDetectsHistoricalBugShapes pins the acceptance criterion
// explicitly by function name, independent of the want comments: the two
// PR-5 shapes must each produce a pairup diagnostic.
func TestPairupDetectsHistoricalBugShapes(t *testing.T) {
	res := runFixture(t, "pairup", []*Analyzer{PairupAnalyzer})
	var breakerLeak, flightLeak bool
	for _, d := range res.Unsuppressed() {
		if strings.Contains(d.Message, "breaker probe slot") {
			breakerLeak = true
		}
		if strings.Contains(d.Message, "single-flight leadership") {
			flightLeak = true
		}
	}
	if !breakerLeak {
		t.Error("pairup did not flag the PR-5 breaker probe-slot leak shape")
	}
	if !flightLeak {
		t.Error("pairup did not flag the PR-5 single-flight leader-abandonment shape")
	}
}

// TestIgnoreMechanics: a well-formed directive suppresses exactly its
// target and is recorded for the audit; a reason-less directive is a
// diagnostic itself and suppresses nothing.
func TestIgnoreMechanics(t *testing.T) {
	res := runFixture(t, "ignore", []*Analyzer{CtxflowAnalyzer})
	if got := res.SuppressedCount(); got != 1 {
		t.Errorf("SuppressedCount = %d, want 1", got)
	}
	var malformed, unsuppressedCtxflow int
	for _, d := range res.Unsuppressed() {
		switch d.Analyzer {
		case "lint":
			malformed++
		case "ctxflow":
			unsuppressedCtxflow++
		}
	}
	if malformed != 1 {
		t.Errorf("malformed-directive diagnostics = %d, want 1", malformed)
	}
	if unsuppressedCtxflow != 1 {
		t.Errorf("unsuppressed ctxflow diagnostics = %d, want 1 (the reason-less directive must not suppress)", unsuppressedCtxflow)
	}
	if len(res.Ignores) != 1 {
		t.Fatalf("recorded ignores = %d, want 1 (the malformed one is rejected)", len(res.Ignores))
	}
	ig := res.Ignores[0]
	if strings.TrimSpace(ig.Reason) == "" {
		t.Error("recorded ignore has an empty reason")
	}
	if !ig.Used {
		t.Error("recorded ignore not marked used")
	}
}

// TestRepoIsLintClean runs the full suite over the whole module, the
// same gate CI applies: zero unsuppressed findings, and every
// //lint:ignore in the tree carries a non-empty reason and actually
// suppresses something (a stale ignore is dead weight that would mask a
// future finding).
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	l := NewLoader(moduleRoot(t))
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	res := Run(l.Fset, pkgs, nil)
	for _, d := range res.Unsuppressed() {
		t.Errorf("unsuppressed finding: %s", d.String())
	}
	for _, ig := range res.Ignores {
		if strings.TrimSpace(ig.Reason) == "" {
			t.Errorf("%s:%d: //lint:ignore with empty reason", ig.Pos.Filename, ig.Pos.Line)
		}
		if !ig.Used {
			t.Errorf("%s:%d: stale //lint:ignore (%s): suppresses nothing", ig.Pos.Filename, ig.Pos.Line, ig.Analyzer)
		}
	}
}

// TestSubsetRunResolvesCrossPackageRegistries: linting one package must
// consult registration tables from its typechecked dependency closure.
// The gateway's fleet aggregator checks scraped replica metric names
// against the service package's metricFamilies table and relays service
// taxonomy codes — a cluster-only run must not flag either.
func TestSubsetRunResolvesCrossPackageRegistries(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the cluster dependency closure; skipped in -short")
	}
	l := NewLoader(moduleRoot(t))
	pkgs, err := l.Load("./internal/cluster")
	if err != nil {
		t.Fatalf("load ./internal/cluster: %v", err)
	}
	res := RunWithContext(l.Fset, pkgs, l.Typed(), nil)
	for _, d := range res.Unsuppressed() {
		t.Errorf("unsuppressed finding in subset run: %s", d.String())
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestDiagnosticString pins the one-line rendering format the CLI and CI
// logs rely on: file:line:col, analyzer tag, message, fix hint.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "pairup",
		Message:  "breaker probe slot acquired at line 3 is not released on this path",
		Hint:     "resolve the slot",
	}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 9
	d.Pos.Column = 2
	got := d.String()
	want := "x.go:9:2: [pairup] breaker probe slot acquired at line 3 is not released on this path (fix: resolve the slot)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestAnalyzerRegistry: stable names, resolvable via ByName, docs
// present — the CLI's -analyzers flag and the README table depend on
// these.
func TestAnalyzerRegistry(t *testing.T) {
	wantNames := []string{"waitlock", "pairup", "ctxflow", "metricreg", "errtaxonomy"}
	if len(Analyzers) != len(wantNames) {
		t.Fatalf("len(Analyzers) = %d, want %d", len(Analyzers), len(wantNames))
	}
	for i, name := range wantNames {
		if Analyzers[i].Name != name {
			t.Errorf("Analyzers[%d].Name = %q, want %q", i, Analyzers[i].Name, name)
		}
		if ByName(name) != Analyzers[i] {
			t.Errorf("ByName(%q) did not resolve", name)
		}
		if Analyzers[i].Doc == "" {
			t.Errorf("analyzer %q has no doc", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}
