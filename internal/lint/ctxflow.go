package lint

import (
	"go/ast"
	"go/types"
)

// CtxflowAnalyzer is the paper's lost-cancellation anomaly: a request
// context that stops flowing. In the rendezvous model a process waits
// forever because the message that would release it is never sent; in
// this codebase the same shape is a handler that swaps the request ctx
// for context.Background() (or TODO) partway down the call chain — every
// deadline and cancellation upstream of that point silently stops
// propagating, and the work below it can outlive the request forever.
//
// The rule: inside any function that has a context.Context in scope
// (its own parameter, or a captured one from an enclosing function),
// calling context.Background() or context.TODO() is a finding. Detached
// lifetimes that are deliberate — the shutdown grace window, the
// single-flight leader that must survive its first caller — carry a
// //lint:ignore ctxflow <reason>, which is exactly the audit trail the
// allowlist wants. context.WithoutCancel(ctx) is the sanctioned way to
// detach lifetime while keeping values, and is not flagged.
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "request contexts must keep flowing: no fresh context roots inside ctx-aware functions",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ctxflowVisit(pass, f, false)
	}
}

// ctxflowVisit walks n, tracking whether a context.Context parameter is
// lexically in scope (inScope). Function literals inherit the enclosing
// scope's context through capture; named functions start fresh.
func ctxflowVisit(pass *Pass, n ast.Node, inScope bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				ctxflowVisit(pass, x.Body, hasCtxParam(pass.Pkg.Info, x.Type))
			}
			return false
		case *ast.FuncLit:
			ctxflowVisit(pass, x.Body, inScope || hasCtxParam(pass.Pkg.Info, x.Type))
			return false
		case *ast.CallExpr:
			if !inScope {
				return true
			}
			if pkg, name, ok := funcCall(pass.Pkg.Info, x); ok && pkg == "context" && (name == "Background" || name == "TODO") {
				pass.Reportf(x.Pos(),
					"thread the caller's ctx (derive with context.WithTimeout/WithCancel, or context.WithoutCancel for deliberate detachment)",
					"context.%s() inside a context-aware function detaches this call chain from cancellation", name)
			}
		}
		return true
	})
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter (ignoring the blank identifier: a ctx the
// function cannot name is a ctx it cannot thread).
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) == 0 {
			continue // unnamed param: nothing to thread
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}
