// Package fixtures exercises the waitlock analyzer: blocking operations
// reached while a sync.Mutex or sync.RWMutex is held. Local types only —
// fixtures never import module packages, so they stay frozen as the real
// code evolves.
package fixtures

import (
	"net/http"
	"sync"
	"time"
)

type store struct {
	mu   sync.Mutex
	wg   sync.WaitGroup
	data map[string]int
	ch   chan int
}

func (s *store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(10 * time.Millisecond) // want `time.Sleep while s.mu is held`
	s.mu.Unlock()
}

func (s *store) sendUnderDeferredUnlock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `channel send while s.mu is held`
}

func (s *store) recvUnderLock() int {
	s.mu.Lock()
	v := <-s.ch // want `channel receive while s.mu is held`
	s.mu.Unlock()
	return v
}

func (s *store) waitGroupUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want `sync.WaitGroup.Wait while s.mu is held`
	s.mu.Unlock()
}

func (s *store) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while s.mu is held`
	case v := <-s.ch:
		s.data["k"] = v
	}
}

func (s *store) selectWithDefaultIsFine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.data["k"] = v
	default:
	}
}

func (s *store) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `s.mu is locked again while already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *store) heldOnOnePathCounts(flag bool) {
	s.mu.Lock()
	if flag {
		s.mu.Unlock()
	}
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
	if !flag {
		s.mu.Unlock()
	}
}

func (s *store) sleepAfterUnlockIsFine() {
	s.mu.Lock()
	s.data["k"] = 1
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func (s *store) goroutineDoesNotInheritTheLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

func (s *store) closureHoldingItsOwnLock() {
	go func() {
		s.mu.Lock()
		time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
		s.mu.Unlock()
	}()
}

func (s *store) rangeOverChannelUnderLock() int {
	total := 0
	s.mu.Lock()
	for v := range s.ch { // want `range over channel while s.mu is held`
		total += v
	}
	s.mu.Unlock()
	return total
}

type cache struct {
	rw sync.RWMutex
	ch chan struct{}
}

func (c *cache) receiveUnderReadLock() {
	c.rw.RLock()
	<-c.ch // want `channel receive while c.rw is held`
	c.rw.RUnlock()
}

func fetchUnderLock(mu *sync.Mutex, client *http.Client) {
	mu.Lock()
	defer mu.Unlock()
	resp, err := client.Get("http://localhost/healthz") // want `http.Client.Get while mu is held`
	if err == nil {
		resp.Body.Close()
	}
}
