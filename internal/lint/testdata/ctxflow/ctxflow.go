// Package fixtures exercises the ctxflow analyzer: a function that
// receives a context must keep it flowing — swapping in a fresh root
// detaches everything below from cancellation, the lost-rendezvous shape
// of the paper's infinite wait.
package fixtures

import (
	"context"
	"time"
)

func threaded(ctx context.Context, work func(context.Context) error) error {
	return work(ctx)
}

func detached(ctx context.Context, work func(context.Context) error) error {
	return work(context.Background()) // want `context.Background\(\) inside a context-aware function`
}

func todoDetached(ctx context.Context, work func(context.Context) error) error {
	return work(context.TODO()) // want `context.TODO\(\) inside a context-aware function`
}

func derived(ctx context.Context, work func(context.Context) error) error {
	dctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(dctx)
}

func sanctionedDetachment(ctx context.Context, work func(context.Context) error) error {
	// WithoutCancel keeps values (deadline budgets, trace ids) while
	// deliberately detaching lifetime: not a finding.
	return work(context.WithoutCancel(ctx))
}

func rootIsFineWithoutCtx(work func(context.Context) error) error {
	// No context in scope: Background is the legitimate root here.
	return work(context.Background())
}

func closureInheritsScope(ctx context.Context, out chan<- context.Context) {
	go func() {
		out <- context.Background() // want `context.Background\(\) inside a context-aware function`
	}()
}

func freshClosureIsItsOwnScope(out chan<- func() context.Context) {
	out <- func() context.Context {
		return context.Background()
	}
}
