// Package fixtures exercises the errtaxonomy analyzer: error responses
// may only carry codes registered as package-level Code* constants.
package fixtures

import (
	"fmt"
	"net/http"
)

const (
	CodeInvalid  = "invalid_request"
	CodeInternal = "internal"
)

type ErrorBody struct {
	Code    string
	Message string
}

func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	w.WriteHeader(status)
	fmt.Fprintf(w, "%s: %s", code, fmt.Sprintf(format, args...))
}

func respond(w http.ResponseWriter) {
	writeError(w, http.StatusBadRequest, CodeInvalid, "bad request")
	writeError(w, http.StatusBadRequest, "bad_request", "oops") // want `error code "bad_request" is not in the registered taxonomy`
}

func buildBody(ok bool) ErrorBody {
	if ok {
		return ErrorBody{Code: CodeInternal, Message: "contained"}
	}
	return ErrorBody{Code: "oops_internal", Message: "drifted"} // want `error code "oops_internal" is not in the registered taxonomy`
}

func assignBody(b *ErrorBody) {
	b.Code = CodeInvalid
	b.Code = "whoops" // want `error code "whoops" is not in the registered taxonomy`
}

func dynamicCodesPassThrough(b *ErrorBody, upstream string) {
	// Relaying an upstream code verbatim is not a constant: unchecked.
	b.Code = upstream
}
