// Package fixtures reproduces this repository's real resource-leak bug
// history for the pairup analyzer. The types are local stand-ins — pairup
// matches pairs by type and method name, never by package path — so the
// two PR-5 gateway bugs stay pinned here in their pre-fix shapes: the
// circuit breaker probe-slot leak and the abandoned single-flight
// leadership.
package fixtures

import "errors"

// Breaker stands in for the gateway circuit breaker: every Acquire must
// be resolved by Success, Fail, or Release.
type Breaker struct{ open bool }

func (b *Breaker) Acquire() bool { return !b.open }
func (b *Breaker) Release()      {}
func (b *Breaker) Success()      {}
func (b *Breaker) Fail()         {}

type backend struct {
	name    string
	breaker *Breaker
}

// probeSlotLeak is the pre-fix PR-5 breaker bug: the failure path returns
// without resolving the acquired probe slot, so a half-open breaker stays
// half-open forever and the backend is never probed again.
func probeSlotLeak(b *backend, fail bool) error {
	if !b.breaker.Acquire() {
		return errors.New("probe lost")
	}
	if fail {
		return errors.New("upstream down") // want `breaker probe slot acquired at line \d+ is not released on this path`
	}
	b.breaker.Success()
	return nil
}

// probeSlotResolved is the post-fix shape: every path judges the probe.
func probeSlotResolved(b *backend, fail bool) error {
	if !b.breaker.Acquire() {
		return errors.New("probe lost")
	}
	if fail {
		b.breaker.Fail()
		return errors.New("upstream down")
	}
	b.breaker.Success()
	return nil
}

// probeSlotHandedOff transfers ownership: the backend goes to a resolver,
// exactly like the real attemptOne handing its backend to send().
func probeSlotHandedOff(b *backend) error {
	if !b.breaker.Acquire() {
		return errors.New("probe lost")
	}
	return resolve(b)
}

func resolve(b *backend) error {
	b.breaker.Success()
	return nil
}

type flight struct {
	done chan struct{}
	err  error
}

type flightGroup struct {
	m     map[string]*flight
	limit int
}

func (fg *flightGroup) begin(key string) (*flight, bool) {
	if f, ok := fg.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	fg.m[key] = f
	return f, true
}

func (fg *flightGroup) finish(key string, f *flight) {
	delete(fg.m, key)
	close(f.done)
}

// leaderAbandoned is the PR-5 cancellation-sharing shape: the leader
// bails out on its own cancellation without finishing the flight, and
// every follower parked on f.done waits forever.
func leaderAbandoned(fg *flightGroup, key string, cancelled bool) error {
	f, leader := fg.begin(key)
	if !leader {
		<-f.done
		return f.err
	}
	if cancelled {
		return errors.New("client cancelled") // want `single-flight leadership acquired at line \d+ is not released on this path`
	}
	fg.finish(key, f)
	return nil
}

// leaderAbandonedAfterReceiverRead pins the escape rule's shape
// awareness: the flight group is the registry, not the owner — reading a
// field off it must not end tracking of the flight handle. (An earlier
// rule treated any receiver use as a handoff and went silent on exactly
// the real gateway shape, where the leader reads fg.timeout before
// running the upstream call.)
func leaderAbandonedAfterReceiverRead(fg *flightGroup, key string, n int) error {
	f, leader := fg.begin(key)
	if !leader {
		<-f.done
		return f.err
	}
	limit := fg.limit
	if n > limit {
		return errors.New("over limit") // want `single-flight leadership acquired at line \d+ is not released on this path`
	}
	fg.finish(key, f)
	return nil
}

// leaderFinishes is the post-fix shape: the leader finishes on every
// path, even when its own caller has gone away.
func leaderFinishes(fg *flightGroup, key string, cancelled bool) error {
	f, leader := fg.begin(key)
	if !leader {
		<-f.done
		return f.err
	}
	if cancelled {
		fg.finish(key, f)
		return errors.New("client cancelled")
	}
	fg.finish(key, f)
	return nil
}

// Pool stands in for the sync.Pool Get/Put pairing around pooled buffers.
type Pool struct{ free []*buffer }

type buffer struct{ b []byte }

func (p *Pool) Get() *buffer {
	if n := len(p.free); n > 0 {
		buf := p.free[n-1]
		p.free = p.free[:n-1]
		return buf
	}
	return &buffer{}
}

func (p *Pool) Put(b *buffer) { p.free = append(p.free, b) }

func pooledLeak(p *Pool, huge bool) {
	buf := p.Get()
	if huge {
		return // want `pooled object acquired at line \d+ is not released on this path`
	}
	p.Put(buf)
}

func pooledDeferredPut(p *Pool, n int) int {
	buf := p.Get()
	defer p.Put(buf)
	if n < 0 {
		return 0
	}
	return n
}

type Span struct{ name string }

func (s *Span) StartChild(name string) *Span { return &Span{name: name} }
func (s *Span) End()                         {}

type Tracer struct{}

func (t *Tracer) Start(name string) *Span { return &Span{name: name} }

func spanLeak(root *Span, fail bool) error {
	sp := root.StartChild("stage")
	if fail {
		return errors.New("stage failed") // want `span acquired at line \d+ is not released on this path`
	}
	sp.End()
	return nil
}

func spanDeferredEnd(root *Span) {
	sp := root.StartChild("stage")
	defer sp.End()
}

func spanReturnedToCaller(t *Tracer, bail bool) *Span {
	sp := t.Start("request")
	if bail {
		return nil // want `span acquired at line \d+ is not released on this path`
	}
	return sp
}

type tickets struct{ ch chan struct{} }

func (t tickets) acquire() { t.ch <- struct{}{} }
func (t tickets) release() { <-t.ch }

// ticketLeak loses one admission ticket per spawned item: the batch
// starves itself once the channel fills.
func ticketLeak(t tickets, items []int) {
	for range items {
		t.acquire()
		go func() {
			// forgot t.release()
		}()
	}
} // want `admission ticket acquired at line \d+ is not released on this path`

func ticketPaired(t tickets, items []int) {
	for range items {
		t.acquire()
		go func() {
			defer t.release()
		}()
	}
}
