package fixtures

import (
	"fmt"
	"io"
)

func writeMetrics(w io.Writer, n int) {
	fmt.Fprintf(w, "siwa_fixture_requests_total{endpoint=%q} %d\n", "analyze", n)
	fmt.Fprintf(w, "siwa_fixture_depth %d\n", n)
	fmt.Fprintf(w, "siwa_fixture_reqs_total{endpoint=%q} %d\n", "analyze", n)  // want `metric "siwa_fixture_reqs_total" is not in the metricFamilies registration table`
	fmt.Fprintf(w, "siwa_fixture_requests_total{route=%q} %d\n", "analyze", n) // want `metric "siwa_fixture_requests_total" uses label "route"; registered label key is "endpoint"`
	fmt.Fprintf(w, "siwa_fixture_depth{shard=%q} %d\n", "a", n)                // want `metric "siwa_fixture_depth" uses label "shard" but is registered without labels`
	fmt.Fprintf(w, "# HELP siwa_fixture_requests_total requests received\n")   // HELP lines are not observation sites
	fmt.Fprintf(w, "prefix_%s_total %d\n", "dynamic", n)                       // dynamic names are unchecked by design
}

type histogram struct{}

func (h *histogram) WriteProm(w io.Writer, name, labelKey, labelValue string) {}

func writeHistograms(w io.Writer, h *histogram) {
	h.WriteProm(w, "siwa_fixture_latency_seconds", "stage", "parse")
	h.WriteProm(w, "siwa_fixture_latency_seconds_bucket", "stage", "parse")
	h.WriteProm(w, "siwa_fixture_lat_seconds", "stage", "parse")     // want `metric "siwa_fixture_lat_seconds" is not in the metricFamilies registration table`
	h.WriteProm(w, "siwa_fixture_latency_seconds", "phase", "parse") // want `metric "siwa_fixture_latency_seconds" uses label "phase"; registered label key is "stage"`
}
