// Package fixtures exercises the metricreg analyzer. This file is the
// registration table; sites.go holds the observation sites checked
// against it.
package fixtures

var metricFamilies = map[string]string{
	"siwa_fixture_requests_total":  "endpoint",
	"siwa_fixture_depth":           "",
	"siwa_fixture_latency_seconds": "stage",
}
