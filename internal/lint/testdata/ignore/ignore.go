// Package fixtures exercises the //lint:ignore mechanics: a well-formed
// directive suppresses (and is counted), a reason-less directive is
// itself a diagnostic and suppresses nothing.
package fixtures

import "context"

func deliberateDetachment(ctx context.Context) context.Context {
	//lint:ignore ctxflow fixture demonstrates a deliberate, documented detachment
	return context.Background()
}

func reasonlessDirective(ctx context.Context) context.Context {
	//lint:ignore ctxflow
	return context.Background()
}
