package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Incomplete bool
}

// Package is one fully typechecked package: the parsed files, the
// go/types object graph, and the resolved type information the analyzers
// read. Only module (non-standard-library) packages are analyzed, but the
// loader typechecks the whole dependency closure from source so that
// cross-package types (sync.Mutex, context.Context, ...) resolve exactly.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Filenames  []string
	Types      *types.Package
	Info       *types.Info
	Standard   bool
}

// Loader typechecks packages from source in dependency order, driven by
// `go list -json -deps`. It is the zero-dependency stand-in for
// golang.org/x/tools/go/packages: the standard library ships everything
// needed (go/parser, go/types, and the go command itself).
type Loader struct {
	Fset *token.FileSet

	dir              string              // module root the go command runs in
	list             map[string]*listPkg // import path -> go list record
	typed            map[string]*Package // import path -> typechecked package
	loading          map[string]bool     // cycle guard (should not fire on valid code)
	fallbackImporter types.Importer      // source importer for paths go list did not cover
}

// NewLoader returns a loader rooted at dir (the module root; "" = cwd).
func NewLoader(dir string) *Loader {
	return &Loader{
		Fset:    token.NewFileSet(),
		dir:     dir,
		list:    make(map[string]*listPkg),
		typed:   make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// goList runs `go list -json -deps patterns...` and merges the records
// into l.list. CGO_ENABLED=0 keeps every package's file list pure Go, so
// the whole closure can be typechecked from source.
func (l *Loader) goList(patterns ...string) error {
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return fmt.Errorf("decode go list output: %v", err)
		}
		if _, ok := l.list[p.ImportPath]; !ok {
			cp := p
			l.list[p.ImportPath] = &cp
		}
	}
	return nil
}

// Load lists the packages matching patterns, typechecks them (and their
// whole import closure) from source, and returns the matched module
// packages in deterministic import-path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// A plain `go list patterns` names the roots; the -deps variant then
	// fills in the whole closure for typechecking.
	roots, err := l.listRoots(patterns...)
	if err != nil {
		return nil, err
	}
	if err := l.goList(patterns...); err != nil {
		return nil, err
	}
	var out []*Package
	for _, ip := range roots {
		p, err := l.typecheck(ip)
		if err != nil {
			return nil, err
		}
		if !p.Standard {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// listRoots runs `go list patterns` (no -deps) for the matched roots.
func (l *Loader) listRoots(patterns ...string) ([]string, error) {
	args := append([]string{"list"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var roots []string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			roots = append(roots, line)
		}
	}
	return roots, nil
}

// typecheck returns the typechecked package for importPath, loading its
// imports first (memoized, so each package is checked once per Loader).
func (l *Loader) typecheck(importPath string) (*Package, error) {
	if p, ok := l.typed[importPath]; ok {
		return p, nil
	}
	if importPath == "unsafe" {
		p := &Package{ImportPath: "unsafe", Types: types.Unsafe, Standard: true}
		l.typed["unsafe"] = p
		return p, nil
	}
	lp, ok := l.list[importPath]
	if !ok {
		return nil, fmt.Errorf("package %s not in go list output", importPath)
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files := make([]*ast.File, 0, len(lp.GoFiles))
	names := make([]string, 0, len(lp.GoFiles))
	for _, f := range lp.GoFiles {
		path := filepath.Join(lp.Dir, f)
		af, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, af)
		names = append(names, path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    importerFunc(func(path string) (*types.Package, error) { return l.importFor(lp, path) }),
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			// Collected via the returned error below for module packages;
			// standard-library oddities are tolerated by the nil check there.
		},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil && (lp.Module != nil || !lp.Standard) {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        lp.Dir,
		Files:      files,
		Filenames:  names,
		Types:      tpkg,
		Info:       info,
		Standard:   lp.Standard,
	}
	l.typed[importPath] = p
	return p, nil
}

// Typed returns every non-standard-library package this loader has
// typechecked so far — the requested packages plus their module-local
// dependency closure — in deterministic order. Registry-driven analyzers
// take it as run context so a subset run still resolves cross-package
// registration tables.
func (l *Loader) Typed() []*Package {
	var out []*Package
	for _, p := range l.typed {
		if !p.Standard {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// importFor resolves one import spelling inside pkg: the package's
// ImportMap first (vendored std rewrites like golang.org/x/net/... ->
// vendor/golang.org/x/net/...), then the path verbatim.
func (l *Loader) importFor(from *listPkg, path string) (*types.Package, error) {
	if mapped, ok := from.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.list[path]; !ok {
		// A path outside the -deps closure (can happen for synthetic
		// fixture loads): fall back to the stdlib source importer.
		if l.fallbackImporter == nil {
			l.fallbackImporter = importer.ForCompiler(l.Fset, "source", nil)
		}
		return l.fallbackImporter.Import(path)
	}
	p, err := l.typecheck(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// LoadDir typechecks a single directory of Go files that is NOT part of
// the module build (golden fixtures under testdata). Imports resolve
// against the standard library; fixture files may not import module
// packages — they declare local stand-in types instead, which is exactly
// what keeps the fixtures frozen as the real code evolves.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(goFiles)
	// Gather the stdlib imports so the topo loader covers them.
	var imports []string
	seen := map[string]bool{}
	files := make([]*ast.File, 0, len(goFiles))
	names := make([]string, 0, len(goFiles))
	for _, f := range goFiles {
		path := filepath.Join(dir, f)
		af, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, af)
		names = append(names, path)
		for _, imp := range af.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if !seen[ip] {
				seen[ip] = true
				imports = append(imports, ip)
			}
		}
	}
	if len(imports) > 0 {
		if err := l.goList(imports...); err != nil {
			return nil, err
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	synthetic := &listPkg{ImportPath: "fixture/" + filepath.Base(dir), Dir: dir}
	conf := types.Config{
		Importer:    importerFunc(func(path string) (*types.Package, error) { return l.importFor(synthetic, path) }),
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(synthetic.ImportPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %v", dir, err)
	}
	return &Package{
		ImportPath: synthetic.ImportPath,
		Dir:        dir,
		Files:      files,
		Filenames:  names,
		Types:      tpkg,
		Info:       info,
	}, nil
}
