// Package lint is siwad-lint: a repo-specific static-analysis suite that
// turns the source paper's infinite-wait lens on this repository's own
// concurrency code. The paper detects rendezvous programs that can wait
// forever; the Go shapes of the same anomaly class here are blocking
// operations reached while a mutex is held (waitlock), acquired resources
// that some path never releases (pairup), and request contexts that stop
// flowing so cancellation never arrives (ctxflow). Two supporting passes
// keep the observable surface honest: metric names must match their
// pre-registration tables (metricreg) and error responses may only carry
// registered taxonomy codes (errtaxonomy).
//
// Everything is built on the standard library's go/ast + go/types, driven
// by `go list -json` and source typechecking, so the module keeps zero
// external requirements.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: position, owning analyzer, a one-line
// message, and a one-line fix hint. Suppressed findings (an in-scope
// //lint:ignore comment) are retained and counted, never silently
// dropped.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Hint     string

	Suppressed     bool
	SuppressReason string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	if d.Hint != "" {
		s += " (fix: " + d.Hint + ")"
	}
	return s
}

// Pass is one analyzer's view of one package. All holds every package in
// the run, Context the rest of the typechecked closure (dependencies that
// are not themselves being linted): registry-driven analyzers (metricreg)
// resolve their registration tables across package boundaries — the
// gateway scrapes replica metric names, so its observation sites must
// check against the service package's table even when only the gateway
// package is in the run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	All      []*Package
	Context  []*Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos. hint is the one-line fix suggestion
// ("" allowed but discouraged — every real finding has a next action).
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// Analyzer is one named pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers is the full suite, in stable order. waitlock and pairup are
// the paper's infinite-wait and resource-leak anomalies transliterated to
// Go; the rest keep the request path and the observable surface coherent.
var Analyzers = []*Analyzer{
	WaitlockAnalyzer,
	PairupAnalyzer,
	CtxflowAnalyzer,
	MetricregAnalyzer,
	ErrtaxonomyAnalyzer,
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Ignore is one //lint:ignore <analyzer> <reason> site. A bare "all"
// analyzer name suppresses every analyzer on the target line.
type Ignore struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	Used     bool
}

const ignorePrefix = "//lint:ignore"

// parseIgnores scans a file's comments for //lint:ignore directives. The
// directive suppresses diagnostics on the line it targets: its own line
// for a trailing comment, the next code line for a comment on a line of
// its own. A directive with no reason is itself a diagnostic — the audit
// trail is the point of the mechanism.
func parseIgnores(fset *token.FileSet, f *ast.File, diags *[]Diagnostic) []*Ignore {
	var out []*Ignore
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.SplitN(rest, " ", 2)
			pos := fset.Position(c.Pos())
			if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" || fields[0] == "" {
				*diags = append(*diags, Diagnostic{
					Pos:      pos,
					Analyzer: "lint",
					Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
					Hint:     "state which analyzer is suppressed and why",
				})
				continue
			}
			out = append(out, &Ignore{Pos: pos, Analyzer: fields[0], Reason: strings.TrimSpace(fields[1])})
		}
	}
	return out
}

// targetLine is the code line an ignore comment suppresses: the comment's
// own line (trailing form). When nothing else shares the line, the
// directive stands alone and suppresses the next line instead.
func (ig *Ignore) matches(d *Diagnostic) bool {
	if ig.Pos.Filename != d.Pos.Filename {
		return false
	}
	if ig.Analyzer != "all" && ig.Analyzer != d.Analyzer {
		return false
	}
	return d.Pos.Line == ig.Pos.Line || d.Pos.Line == ig.Pos.Line+1
}

// Result is one run of the suite: every diagnostic (suppressed ones
// marked, not dropped) plus every ignore site seen, for the audit
// listing.
type Result struct {
	Diagnostics []Diagnostic
	Ignores     []*Ignore
}

// Unsuppressed returns the findings that should fail a build.
func (r *Result) Unsuppressed() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// SuppressedCount counts findings silenced by an in-scope ignore.
func (r *Result) SuppressedCount() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Suppressed {
			n++
		}
	}
	return n
}

// Run executes the given analyzers (nil = all) over the packages and
// applies //lint:ignore suppressions. Diagnostics come out sorted by
// file, line, column, analyzer.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) *Result {
	return RunWithContext(fset, pkgs, nil, analyzers)
}

// RunWithContext is Run with extra typechecked-but-not-linted packages
// (typically Loader.Typed() — the dependency closure) whose registration
// tables registry-driven analyzers may consult. No diagnostics are ever
// reported against context packages.
func RunWithContext(fset *token.FileSet, pkgs, context []*Package, analyzers []*Analyzer) *Result {
	if analyzers == nil {
		analyzers = Analyzers
	}
	res := &Result{}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		var ignores []*Ignore
		for _, f := range pkg.Files {
			ignores = append(ignores, parseIgnores(fset, f, &diags)...)
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, All: pkgs, Context: context, diags: &diags}
			a.Run(pass)
		}
		for i := range diags {
			for _, ig := range ignores {
				if ig.matches(&diags[i]) {
					diags[i].Suppressed = true
					diags[i].SuppressReason = ig.Reason
					ig.Used = true
					break
				}
			}
		}
		res.Diagnostics = append(res.Diagnostics, diags...)
		res.Ignores = append(res.Ignores, ignores...)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(res.Ignores, func(i, j int) bool {
		a, b := res.Ignores[i], res.Ignores[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return res
}
