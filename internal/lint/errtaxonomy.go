package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrtaxonomyAnalyzer pins error responses to the registered taxonomy.
// The taxonomy is the set of package-level `Code*` string constants
// (internal/service/errors.go in the real tree), unioned across every
// package in the run. Clients key retry/backoff behaviour off these
// strings, and the gateway's retry budget classifies replica failures by
// them — an ad-hoc code at one writeError site is invisible drift that
// never fails a test. Checked sites: writeError-style calls (the
// parameter literally named "code"), Code/ErrorCode fields in composite
// literals, and Code/ErrorCode field assignments. Only compile-time
// constant strings are checked; dynamically built codes pass through.
//
// A run with no Code* constants anywhere stays silent.
var ErrtaxonomyAnalyzer = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "error responses may only carry registered taxonomy codes (Code* constants)",
	Run:  runErrtaxonomy,
}

func runErrtaxonomy(pass *Pass) {
	reg := collectTaxonomy(pass)
	if len(reg) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCodeParam(pass, reg, x)
			case *ast.CompositeLit:
				checkCodeFields(pass, reg, x)
			case *ast.AssignStmt:
				checkCodeAssign(pass, reg, x)
			}
			return true
		})
	}
}

// collectTaxonomy unions every package-level Code* string constant in the
// run and its typechecked context into code -> defining package, so a
// subset run still accepts codes the gateway relays verbatim from the
// service taxonomy.
func collectTaxonomy(pass *Pass) map[string]string {
	reg := make(map[string]string)
	for _, pkg := range append(append([]*Package{}, pass.All...), pass.Context...) {
		if pkg.Types == nil || pkg.Standard {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if !strings.HasPrefix(name, "Code") || name == "Code" {
				continue
			}
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || c.Val().Kind() != constant.String {
				continue
			}
			reg[constant.StringVal(c.Val())] = pkg.ImportPath
		}
	}
	return reg
}

func reportCode(pass *Pass, pos ast.Node, code string) {
	pass.Reportf(pos.Pos(),
		"use a registered Code* constant (or add the new code to the taxonomy first)",
		"error code %q is not in the registered taxonomy", code)
}

// checkCodeParam validates constant-string arguments bound to a
// parameter named "code" — the writeError(w, status, code, ...) shape in
// both the service and the gateway.
func checkCodeParam(pass *Pass, reg map[string]string, call *ast.CallExpr) {
	sig := calleeSignature(pass.Pkg.Info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if params.At(i).Name() != "code" {
			continue
		}
		if b, ok := params.At(i).Type().(*types.Basic); !ok || b.Kind() != types.String {
			continue
		}
		if code, isConst := constString(pass.Pkg.Info, call.Args[i]); isConst {
			if _, registered := reg[code]; !registered {
				reportCode(pass, call.Args[i], code)
			}
		}
	}
}

// calleeSignature resolves the called function's signature, for plain
// functions and methods alike; nil for conversions, builtins, and
// indirect calls with no resolvable object.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// checkCodeFields validates Code / ErrorCode keys in composite literals
// (ErrorBody{Code: ...}, BatchResult{ErrorCode: ...}, codedError{...}).
func checkCodeFields(pass *Pass, reg map[string]string, cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !isCodeField(key.Name) {
			continue
		}
		if code, isConst := constString(pass.Pkg.Info, kv.Value); isConst && code != "" {
			if _, registered := reg[code]; !registered {
				reportCode(pass, kv.Value, code)
			}
		}
	}
}

// checkCodeAssign validates `x.Code = "..."` / `x.ErrorCode = "..."`.
func checkCodeAssign(pass *Pass, reg map[string]string, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !isCodeField(sel.Sel.Name) {
			continue
		}
		if code, isConst := constString(pass.Pkg.Info, as.Rhs[i]); isConst && code != "" {
			if _, registered := reg[code]; !registered {
				reportCode(pass, as.Rhs[i], code)
			}
		}
	}
}

func isCodeField(name string) bool {
	return name == "Code" || name == "ErrorCode" || name == "code"
}

// constString resolves e to a compile-time string constant.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}
