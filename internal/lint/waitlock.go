package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WaitlockAnalyzer is the paper's infinite-wait anomaly transliterated to
// Go: a blocking operation — channel send/receive outside a
// select-with-default, a select with no default, time.Sleep, a
// WaitGroup/Cond wait, or a network/HTTP call — reached while a
// sync.Mutex or sync.RWMutex is held. Every goroutine that touches the
// same mutex then inherits the wait: the paper's rendezvous that may
// never complete, with the lock as the rendezvous.
//
// The pass is flow-sensitive per function: it tracks the held-lock set
// through statement lists, branches (states merge as a union — held on
// any path counts), and loops, clears a lock at its Unlock, and keeps a
// deferred Unlock held to the end of the function (that is the point:
// blocking under `defer mu.Unlock()` is the bug). Function literals are
// not entered — a goroutine body does not hold the caller's lock, and a
// deferred closure runs after the critical section.
var WaitlockAnalyzer = &Analyzer{
	Name: "waitlock",
	Doc:  "blocking operation while a sync mutex is held (infinite-wait anomaly)",
	Run:  runWaitlock,
}

// lockEvent classifies a statement's effect on the held-lock set.
type lockEvent int

const (
	lockNone lockEvent = iota
	lockAcquire
	lockRelease
)

// lockOp resolves call as a Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// sync.RWMutex (including promoted methods on embedding structs),
// returning the lock's identity key (the printed receiver expression).
func lockOp(info *types.Info, call *ast.CallExpr) (key string, ev lockEvent) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", lockNone
	}
	f, ok := selection.Obj().(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", lockNone
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", lockNone
	}
	_, tname := namedInfo(recv.Type())
	if tname != "Mutex" && tname != "RWMutex" {
		return "", lockNone
	}
	switch f.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), lockAcquire
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), lockRelease
	}
	return "", lockNone
}

// blockingMethods maps (package path, type name, method) to a
// description. These are operations with unbounded wait: the callee
// blocks on the network, a timer, or another goroutine.
var blockingMethods = map[[3]string]string{
	{"sync", "WaitGroup", "Wait"}:             "sync.WaitGroup.Wait",
	{"sync", "Cond", "Wait"}:                  "sync.Cond.Wait",
	{"net/http", "Client", "Do"}:              "http.Client.Do",
	{"net/http", "Client", "Get"}:             "http.Client.Get",
	{"net/http", "Client", "Post"}:            "http.Client.Post",
	{"net/http", "Client", "PostForm"}:        "http.Client.PostForm",
	{"net/http", "Client", "Head"}:            "http.Client.Head",
	{"net/http", "Transport", "RoundTrip"}:    "http.Transport.RoundTrip",
	{"net/http", "RoundTripper", "RoundTrip"}: "http.RoundTripper.RoundTrip",
	{"net/http", "Server", "Serve"}:           "http.Server.Serve",
	{"net/http", "Server", "ListenAndServe"}:  "http.Server.ListenAndServe",
	{"net/http", "Server", "Shutdown"}:        "http.Server.Shutdown",
	{"net", "Dialer", "Dial"}:                 "net.Dialer.Dial",
	{"net", "Dialer", "DialContext"}:          "net.Dialer.DialContext",
	{"os/exec", "Cmd", "Run"}:                 "exec.Cmd.Run",
	{"os/exec", "Cmd", "Wait"}:                "exec.Cmd.Wait",
	{"os/exec", "Cmd", "Output"}:              "exec.Cmd.Output",
	{"os/exec", "Cmd", "CombinedOutput"}:      "exec.Cmd.CombinedOutput",
}

// blockingFuncs maps (package path, function) likewise.
var blockingFuncs = map[[2]string]string{
	{"time", "Sleep"}:        "time.Sleep",
	{"net/http", "Get"}:      "http.Get",
	{"net/http", "Post"}:     "http.Post",
	{"net/http", "PostForm"}: "http.PostForm",
	{"net/http", "Head"}:     "http.Head",
	{"net", "Dial"}:          "net.Dial",
	{"net", "DialTimeout"}:   "net.DialTimeout",
}

// blockingCall names the blocking operation call performs, if any.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if _, pkg, tname, method, ok := methodCall(info, call); ok {
		if desc, hit := blockingMethods[[3]string{pkg, tname, method}]; hit {
			return desc, true
		}
		return "", false
	}
	if pkg, name, ok := funcCall(info, call); ok {
		if desc, hit := blockingFuncs[[2]string{pkg, name}]; hit {
			return desc, true
		}
	}
	return "", false
}

// lockSet is the held-lock state at one program point: lock key -> the
// position of the acquiring Lock call.
type lockSet map[string]token.Pos

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s lockSet) union(other lockSet) {
	for k, v := range other {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

type waitlockWalker struct {
	pass *Pass
	info *types.Info
}

func runWaitlock(pass *Pass) {
	w := &waitlockWalker{pass: pass, info: pass.Pkg.Info}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.stmts(fn.Body.List, lockSet{})
				}
				return false // stmts descends into nested FuncLits itself
			case *ast.FuncLit:
				// Reached only for package-level var initializers; function
				// bodies were already claimed above.
				w.stmts(fn.Body.List, lockSet{})
				return false
			}
			return true
		})
	}
}

// stmts walks a statement list, threading the held-lock set through, and
// returns the state at fall-through.
func (w *waitlockWalker) stmts(list []ast.Stmt, held lockSet) lockSet {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *waitlockWalker) stmt(s ast.Stmt, held lockSet) lockSet {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, ev := lockOp(w.info, call); ev != lockNone {
				switch ev {
				case lockAcquire:
					if pos, already := held[key]; already {
						w.pass.Reportf(call.Pos(), "release the lock before re-acquiring it",
							"%s is locked again while already held (locked at line %d): self-deadlock",
							key, w.pass.Fset.Position(pos).Line)
					}
					held = held.clone()
					held[key] = call.Pos()
				case lockRelease:
					held = held.clone()
					delete(held, key)
				}
				return held
			}
		}
		w.checkExpr(st.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function; a deferred closure runs outside this flow, but its body
		// is still a function worth analyzing on its own.
		w.checkFuncLits(st.Call)
		return held
	case *ast.GoStmt:
		// The spawned goroutine does not hold the caller's locks; the
		// arguments are evaluated now, though.
		w.checkFuncLits(st.Call)
		for _, arg := range st.Call.Args {
			if _, ok := arg.(*ast.FuncLit); !ok {
				w.checkExpr(arg, held)
			}
		}
		return held
	case *ast.SendStmt:
		if len(held) > 0 {
			w.reportBlocked(st.Pos(), "channel send", held)
		}
		w.checkExpr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.checkExpr(st.X, held)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	case *ast.BlockStmt:
		inner := w.stmts(st.List, held.clone())
		return inner
	case *ast.IfStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
		}
		w.checkExpr(st.Cond, held)
		merged := lockSet{}
		thenState := w.stmts(st.Body.List, held.clone())
		if !lastTerminates(w.info, st.Body.List) {
			merged.union(thenState)
		}
		if st.Else != nil {
			elseState := w.stmt(st.Else, held.clone())
			elseTerm := false
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				elseTerm = lastTerminates(w.info, e.List)
			}
			if !elseTerm {
				merged.union(elseState)
			}
		} else {
			merged.union(held)
		}
		return merged
	case *ast.ForStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond, held)
		}
		body := w.stmts(st.Body.List, held.clone())
		out := held.clone()
		out.union(body)
		return out
	case *ast.RangeStmt:
		if t := w.info.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && len(held) > 0 {
				w.reportBlocked(st.Pos(), "range over channel", held)
			}
		}
		w.checkExpr(st.X, held)
		body := w.stmts(st.Body.List, held.clone())
		out := held.clone()
		out.union(body)
		return out
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.checkExpr(st.Tag, held)
		}
		merged := held.clone()
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				merged.union(w.stmts(cc.Body, held.clone()))
			}
		}
		return merged
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
		}
		merged := held.clone()
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				merged.union(w.stmts(cc.Body, held.clone()))
			}
		}
		return merged
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.reportBlocked(st.Pos(), "select without default", held)
		}
		merged := held.clone()
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				merged.union(w.stmts(cc.Body, held.clone()))
			}
		}
		return merged
	}
	return held
}

// checkFuncLits analyzes any function literals under n as functions in
// their own right, with an empty held-lock state: a goroutine or deferred
// closure does not hold the caller's locks, but may take (and block
// under) locks of its own.
func (w *waitlockWalker) checkFuncLits(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, lockSet{})
			return false
		}
		return true
	})
}

// checkExpr scans an expression for blocking operations under held locks.
// Function literals are analyzed separately with a fresh lock state, not
// under the caller's.
func (w *waitlockWalker) checkExpr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	if len(held) == 0 {
		w.checkFuncLits(e)
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.stmts(x.Body.List, lockSet{})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.reportBlocked(x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if desc, ok := blockingCall(w.info, x); ok {
				w.reportBlocked(x.Pos(), desc, held)
			}
		}
		return true
	})
}

func (w *waitlockWalker) reportBlocked(pos token.Pos, what string, held lockSet) {
	// Name one held lock deterministically (the first in key order).
	var key string
	for k := range held {
		if key == "" || k < key {
			key = k
		}
	}
	w.pass.Reportf(pos, "move the blocking operation outside the critical section, or use a select with default",
		"%s while %s is held (locked at line %d): every goroutine contending for the lock inherits this wait",
		what, key, w.pass.Fset.Position(held[key]).Line)
}
