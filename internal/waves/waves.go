// Package waves implements the paper's model of program execution exactly:
// the set of feasible execution waves NextWavesSet*(W_INIT) (§2), explored
// as a finite state space. A wave holds one sync-graph node per task;
// advancing a wave fires one rendezvous between two wave nodes joined by a
// sync edge and moves both tasks to nondeterministically chosen control
// successors.
//
// The explorer serves two roles in the reproduction:
//
//  1. Ground truth. The language semantics make branch outcomes opaque and
//     nondeterministic ("all control flow paths executable"), so the wave
//     closure is the exact definition of a program's possible behaviours;
//     bounded loops are expanded precisely first (cfg.ExpandBounded).
//  2. Baseline. The closure is precisely the concurrency-state-graph style
//     analysis (Taylor 1983) whose exponential growth motivates the
//     paper's polynomial algorithms; BenchmarkExactVsStatic measures it.
//
// Anomalous waves are classified per §2 into stalls (some wave node has no
// complementary node in any task's control-flow future) and deadlocks (the
// wave's coupling digraph has a cycle).
package waves

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/sg"
)

// Options tunes the exploration.
type Options struct {
	// MaxStates caps the number of distinct waves explored; 0 means 1<<20.
	// When exceeded, Result.Truncated is set and results are partial.
	MaxStates int
	// MaxAnomalies caps recorded anomalous waves; 0 means 64. Counting
	// continues past the cap, recording stops.
	MaxAnomalies int
	// LoopExpansionLimit is passed to cfg.ExpandBounded; 0 means 64.
	LoopExpansionLimit int
	// Traces records, for each reported anomaly, the sequence of
	// rendezvous leading from the initial wave to the anomalous one
	// (costs one parent pointer per explored state).
	Traces bool
	// Cancel, when non-nil, is polled periodically during exploration;
	// returning true stops the search early with Result.Cancelled (and
	// Truncated) set. Callers with a context typically pass
	// func() bool { return ctx.Err() != nil }.
	Cancel func() bool
	// Trace, when non-nil, receives the exploration's work counters
	// (states, transitions, anomalous waves) at the end of the search.
	Trace *obs.Span
}

// Rendezvous is one fired synchronization: the two node ids that met.
type Rendezvous struct {
	U, V int
}

// Anomaly is one anomalous execution wave with its classification.
type Anomaly struct {
	// Wave holds the sync-graph node id each task is stuck at (or the id
	// of e for finished tasks).
	Wave []int
	// StallNodes are wave members with no complementary node reachable in
	// any task's future (the paper's stall nodes).
	StallNodes []int
	// DeadlockSet are wave members on a cycle of the coupling digraph
	// (the head nodes D of a deadlock).
	DeadlockSet []int
	// Trace is the rendezvous sequence from the initial wave to this
	// anomaly (only when Options.Traces was set).
	Trace []Rendezvous
}

// Result summarizes a wave-space exploration.
type Result struct {
	// States is the number of distinct feasible waves (|NextWavesSet*|).
	States int
	// Transitions counts wave-advance edges explored.
	Transitions int
	// Completed reports whether some execution reaches all-tasks-at-e.
	Completed bool
	// Deadlock and Stall report whether any reachable wave exhibits each
	// anomaly class. AnomalousWaves counts all anomalous waves reached.
	Deadlock       bool
	Stall          bool
	AnomalousWaves int
	// Anomalies holds up to MaxAnomalies classified anomalous waves.
	Anomalies []Anomaly
	// Truncated reports that MaxStates was hit; absence of anomalies is
	// then inconclusive.
	Truncated bool
	// Cancelled reports that Options.Cancel stopped the search early;
	// Truncated is also set, since the results are partial.
	Cancelled bool
}

// HasAnomaly reports whether any infinite-wait anomaly was found.
func (r *Result) HasAnomaly() bool { return r.AnomalousWaves > 0 }

// Explore computes the feasible wave closure of a sync graph.
// The sync graph's control structure may contain cycles (while loops);
// the state space is still finite because waves range over node vectors.
func Explore(g *sg.Graph, opt Options) *Result {
	if opt.MaxStates == 0 {
		opt.MaxStates = 1 << 20
	}
	if opt.MaxAnomalies == 0 {
		opt.MaxAnomalies = 64
	}
	e := &explorer{g: g, opt: opt, res: &Result{}, seen: map[string]bool{}}
	if opt.Traces {
		e.parent = map[string]parentRec{}
	}
	e.run()
	if t := opt.Trace; t != nil {
		t.Add("states", int64(e.res.States))
		t.Add("transitions", int64(e.res.Transitions))
		t.Add("anomalous_waves", int64(e.res.AnomalousWaves))
		if e.res.Truncated {
			t.Add("truncated", 1)
		}
	}
	return e.res
}

// ExploreProgram expands bounded loops exactly, builds the sync graph and
// explores it. This is the exact reference analysis for a program.
//
// Node ids in the result (waves, stall nodes, deadlock sets, traces) refer
// to the *expanded* program's sync graph; obtain it with
// ExploreProgramGraph to interpret them.
func ExploreProgram(p *lang.Program, opt Options) (*Result, error) {
	g, err := exploreGraph(p, opt.LoopExpansionLimit)
	if err != nil {
		return nil, err
	}
	return Explore(g, opt), nil
}

// ExploreProgramGraph returns the sync graph ExploreProgram analyzes for
// p: the graph of the bounded-loop-expanded program.
func ExploreProgramGraph(p *lang.Program) (*sg.Graph, error) {
	return exploreGraph(p, 0)
}

func exploreGraph(p *lang.Program, loopLimit int) (*sg.Graph, error) {
	if len(p.Procs) > 0 || p.HasCalls() {
		p = p.InlineCalls()
	}
	expanded, err := cfg.ExpandBounded(p, loopLimit)
	if err != nil {
		return nil, err
	}
	return sg.FromProgram(expanded)
}

type explorer struct {
	g    *sg.Graph
	opt  Options
	res  *Result
	seen map[string]bool
	// queue of states (breadth-first keeps witness waves short).
	queue [][]int
	// parent[key] records how a wave was first reached, for traces.
	parent map[string]parentRec
}

type parentRec struct {
	prev  string
	fired Rendezvous
	init  bool
}

func encode(w []int) string {
	b := make([]byte, 0, len(w)*3)
	for _, v := range w {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}

func (e *explorer) push(w []int, from string, fired Rendezvous, init bool) {
	k := encode(w)
	if e.seen[k] {
		return
	}
	e.seen[k] = true
	e.res.States++
	e.queue = append(e.queue, w)
	if e.parent != nil {
		e.parent[k] = parentRec{prev: from, fired: fired, init: init}
	}
}

// trace reconstructs the rendezvous sequence that first reached the wave
// with the given key.
func (e *explorer) trace(key string) []Rendezvous {
	var rev []Rendezvous
	for k := key; ; {
		rec, ok := e.parent[k]
		if !ok || rec.init {
			break
		}
		rev = append(rev, rec.fired)
		k = rec.prev
	}
	out := make([]Rendezvous, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

func (e *explorer) run() {
	g := e.g
	nt := len(g.Tasks)

	// Initial waves: the cartesian product of per-task initial frontiers.
	initial := make([][]int, nt)
	for ti := 0; ti < nt; ti++ {
		initial[ti] = g.InitialNodes(ti)
		if len(initial[ti]) == 0 {
			// Task with an empty CFG frontier cannot occur for validated
			// programs, but guard anyway: treat as finished.
			initial[ti] = []int{g.E}
		}
	}
	wave := make([]int, nt)
	var gen func(ti int)
	gen = func(ti int) {
		if e.res.States >= e.opt.MaxStates {
			e.res.Truncated = true
			return
		}
		if ti == nt {
			e.push(append([]int(nil), wave...), "", Rendezvous{}, true)
			return
		}
		for _, v := range initial[ti] {
			wave[ti] = v
			gen(ti + 1)
		}
	}
	gen(0)

	for steps := 0; len(e.queue) > 0; steps++ {
		// Poll for cancellation every few waves so a context deadline
		// interrupts even exponential state spaces promptly.
		if e.opt.Cancel != nil && steps&0xFF == 0 && e.opt.Cancel() {
			e.res.Cancelled = true
			e.res.Truncated = true
			return
		}
		w := e.queue[0]
		e.queue = e.queue[1:]
		e.step(w)
		if e.res.States >= e.opt.MaxStates {
			e.res.Truncated = true
			return
		}
	}
}

// step expands one wave: fire every enabled rendezvous with every
// combination of control successors; classify the wave if none is enabled.
func (e *explorer) step(w []int) {
	g := e.g
	key := ""
	if e.parent != nil {
		key = encode(w)
	}
	advanced := false
	for u := 0; u < len(w); u++ {
		if w[u] == g.E {
			continue
		}
		for v := u + 1; v < len(w); v++ {
			if w[v] == g.E || !g.HasSyncEdge(w[u], w[v]) {
				continue
			}
			advanced = true
			for _, nu := range g.Control.Succ(w[u]) {
				for _, nv := range g.Control.Succ(w[v]) {
					nw := append([]int(nil), w...)
					nw[u], nw[v] = nu, nv
					e.res.Transitions++
					e.push(nw, key, Rendezvous{U: w[u], V: w[v]}, false)
					if e.res.States >= e.opt.MaxStates {
						return
					}
				}
			}
		}
	}
	if advanced {
		return
	}
	// Terminal wave: success or anomaly.
	allDone := true
	for _, x := range w {
		if x != g.E {
			allDone = false
			break
		}
	}
	if allDone {
		e.res.Completed = true
		return
	}
	e.res.AnomalousWaves++
	a := classify(g, w)
	if len(a.StallNodes) > 0 {
		e.res.Stall = true
	}
	if len(a.DeadlockSet) > 0 {
		e.res.Deadlock = true
	}
	if len(e.res.Anomalies) < e.opt.MaxAnomalies {
		if e.parent != nil {
			a.Trace = e.trace(key)
		}
		e.res.Anomalies = append(e.res.Anomalies, a)
	}
}

// classify applies the paper's §2 definitions to an anomalous wave.
func classify(g *sg.Graph, w []int) Anomaly {
	a := Anomaly{Wave: append([]int(nil), w...)}

	// Future set: nodes reachable from any wave node via control edges,
	// including the wave nodes themselves.
	future := g.Control.ReachableFrom(liveNodes(g, w)...)

	// Stall nodes: wave node r with no complementary node in the future.
	for _, r := range w {
		if r == g.E {
			continue
		}
		stalled := true
		for _, z := range g.Sync[r] {
			if future[z] {
				stalled = false
				break
			}
		}
		if stalled {
			a.StallNodes = append(a.StallNodes, r)
		}
	}

	// Coupling digraph over live wave nodes: edge s->r iff some strict
	// control descendant of s is a sync neighbor of r ("r is coupled to
	// s"). A deadlock set exists iff this digraph has a cycle; its members
	// are the nodes inside cycles (nodes in nontrivial SCCs; self-edges
	// cannot occur because a node is not its own sync neighbor's ancestor
	// in a way that forms a one-node cycle with >= 1 control edge and one
	// sync edge back to itself of complementary sign in the same task —
	// sends and accepts of one signal live in different tasks for sends).
	live := liveNodes(g, w)
	idx := map[int]int{}
	for i, r := range live {
		idx[r] = i
	}
	n := len(live)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i, s := range live {
		// strict future of s: successors' reachability.
		strict := g.Control.ReachableFrom(g.Control.Succ(s)...)
		strict[s] = false // require at least one control edge
		for j, r := range live {
			if i == j {
				continue
			}
			for _, z := range g.Sync[r] {
				if strict[z] {
					adj[i][j] = true
					break
				}
			}
		}
	}
	// Nodes on cycles: i and j mutually reachable for some j (including
	// longer cycles) — use simple DFS-based reachability over the tiny
	// digraph (n = task count).
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		stack := []int{i}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for y := 0; y < n; y++ {
				if adj[x][y] && !reach[i][y] {
					reach[i][y] = true
					stack = append(stack, y)
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if reach[i][i] {
			a.DeadlockSet = append(a.DeadlockSet, live[i])
		}
	}
	return a
}

func liveNodes(g *sg.Graph, w []int) []int {
	var out []int
	for _, r := range w {
		if r != g.E {
			out = append(out, r)
		}
	}
	return out
}

// VerifyTheorem1 checks the paper's Theorem 1 on one anomalous wave: every
// live wave node must be a stall node, a deadlock participant, or
// transitively coupled to one. It returns an error naming any node that
// violates the partition (which would falsify the theorem or reveal an
// implementation bug).
func VerifyTheorem1(g *sg.Graph, a Anomaly) error {
	bad := map[int]bool{}
	for _, r := range a.StallNodes {
		bad[r] = true
	}
	for _, r := range a.DeadlockSet {
		bad[r] = true
	}
	live := liveNodes(g, a.Wave)
	// Propagate: r becomes bad if r is coupled to some bad s (s's strict
	// future contains a sync neighbor of r).
	changed := true
	for changed {
		changed = false
		for _, r := range live {
			if bad[r] {
				continue
			}
			for _, s := range live {
				if s == r || !bad[s] {
					continue
				}
				strict := g.Control.ReachableFrom(g.Control.Succ(s)...)
				coupled := false
				for _, z := range g.Sync[r] {
					if strict[z] {
						coupled = true
						break
					}
				}
				if coupled {
					bad[r] = true
					changed = true
					break
				}
			}
		}
	}
	for _, r := range live {
		if !bad[r] {
			return fmt.Errorf("waves: node %s on anomalous wave is neither stalled, deadlocked, nor transitively coupled to an anomaly", g.Nodes[r])
		}
	}
	return nil
}
