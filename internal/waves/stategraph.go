package waves

import (
	"fmt"
	"strings"

	"repro/internal/sg"
)

// StateGraph materializes the wave closure as an explicit graph — the
// concurrency-state-graph representation of Taylor (1983) that the paper
// contrasts with the sync graph. Intended for inspection and teaching;
// state counts grow exponentially, so construction is capped.
type StateGraph struct {
	Graph *sg.Graph
	// States holds the distinct waves in discovery (BFS) order.
	States []StateNode
	// Edges are wave advances: firing Rendezvous moved state From to To.
	Edges []StateEdge
	// Truncated reports that MaxStates was hit.
	Truncated bool
}

// StateNode is one wave with its classification.
type StateNode struct {
	Wave      []int
	Terminal  bool // no rendezvous enabled
	Completed bool // all tasks at e
	Anomalous bool // terminal, not completed
	Deadlock  bool // anomalous with a coupling cycle
	Stall     bool // anomalous with a stall node
}

// StateEdge is one wave advance.
type StateEdge struct {
	From, To int
	Fired    Rendezvous
}

// BuildStateGraph explores the wave closure of g, recording every state
// and transition, up to maxStates (0 = 1<<14).
func BuildStateGraph(g *sg.Graph, maxStates int) *StateGraph {
	if maxStates <= 0 {
		maxStates = 1 << 14
	}
	out := &StateGraph{Graph: g}
	id := map[string]int{}

	intern := func(w []int) (int, bool) {
		k := encode(w)
		if i, ok := id[k]; ok {
			return i, false
		}
		if len(out.States) >= maxStates {
			out.Truncated = true
			return -1, false
		}
		i := len(out.States)
		id[k] = i
		out.States = append(out.States, StateNode{Wave: append([]int(nil), w...)})
		return i, true
	}

	nt := len(g.Tasks)
	initial := make([][]int, nt)
	for ti := 0; ti < nt; ti++ {
		initial[ti] = g.InitialNodes(ti)
	}
	var queue []int
	wave := make([]int, nt)
	var gen func(ti int)
	gen = func(ti int) {
		if ti == nt {
			if i, fresh := intern(wave); fresh {
				queue = append(queue, i)
			}
			return
		}
		for _, v := range initial[ti] {
			wave[ti] = v
			gen(ti + 1)
		}
	}
	gen(0)

	for qi := 0; qi < len(queue); qi++ {
		si := queue[qi]
		w := out.States[si].Wave
		advanced := false
		for u := 0; u < nt; u++ {
			if w[u] == g.E {
				continue
			}
			for v := u + 1; v < nt; v++ {
				if w[v] == g.E || !g.HasSyncEdge(w[u], w[v]) {
					continue
				}
				advanced = true
				for _, nu := range g.Control.Succ(w[u]) {
					for _, nv := range g.Control.Succ(w[v]) {
						nw := append([]int(nil), w...)
						nw[u], nw[v] = nu, nv
						ti, fresh := intern(nw)
						if ti < 0 {
							continue
						}
						if fresh {
							queue = append(queue, ti)
						}
						out.Edges = append(out.Edges, StateEdge{
							From: si, To: ti,
							Fired: Rendezvous{U: w[u], V: w[v]},
						})
					}
				}
			}
		}
		if !advanced {
			st := &out.States[si]
			st.Terminal = true
			st.Completed = true
			for _, x := range w {
				if x != g.E {
					st.Completed = false
					break
				}
			}
			if !st.Completed {
				st.Anomalous = true
				a := classify(g, w)
				st.Deadlock = len(a.DeadlockSet) > 0
				st.Stall = len(a.StallNodes) > 0
			}
		}
	}
	return out
}

// StateLabel renders one wave as "task:node" pairs.
func (s *StateGraph) StateLabel(i int) string {
	g := s.Graph
	parts := make([]string, len(s.States[i].Wave))
	for ti, n := range s.States[i].Wave {
		name := "e"
		if n != g.E {
			if g.Nodes[n].Label != "" {
				name = g.Nodes[n].Label
			} else {
				name = g.Nodes[n].String()
			}
		}
		parts[ti] = fmt.Sprintf("%s:%s", g.Tasks[ti], name)
	}
	return strings.Join(parts, " ")
}

// DOT renders the state graph in Graphviz format: doubled circles mark
// completion, filled red nodes mark anomalies.
func (s *StateGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph waves {\n  rankdir=LR;\n")
	for i, st := range s.States {
		attrs := ""
		switch {
		case st.Completed:
			attrs = ", shape=doublecircle"
		case st.Deadlock:
			attrs = ", style=filled, fillcolor=salmon"
		case st.Anomalous:
			attrs = ", style=filled, fillcolor=khaki"
		}
		fmt.Fprintf(&b, "  s%d [label=%q%s];\n", i, s.StateLabel(i), attrs)
	}
	g := s.Graph
	for _, e := range s.Edges {
		u, v := g.Nodes[e.Fired.U], g.Nodes[e.Fired.V]
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", e.From, e.To,
			fmt.Sprintf("%s~%s", nodeLabel(u), nodeLabel(v)))
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeLabel(n *sg.Node) string {
	if n.Label != "" {
		return n.Label
	}
	return n.String()
}
