package waves

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/sg"
	"repro/internal/workload"
)

func TestStateGraphHandshake(t *testing.T) {
	g := sg.MustFromProgram(lang.MustParse(`
task t1 is
begin
  t2.sig1;
  accept sig2;
end;
task t2 is
begin
  accept sig1;
  t1.sig2;
end;
`))
	s := BuildStateGraph(g, 0)
	if s.Truncated {
		t.Fatal("truncated")
	}
	if len(s.States) != 3 || len(s.Edges) != 2 {
		t.Fatalf("states=%d edges=%d", len(s.States), len(s.Edges))
	}
	var completed int
	for _, st := range s.States {
		if st.Completed {
			completed++
		}
		if st.Anomalous {
			t.Fatal("handshake state flagged anomalous")
		}
	}
	if completed != 1 {
		t.Fatalf("completed states=%d", completed)
	}
	dot := s.DOT()
	for _, want := range []string{"digraph waves", "doublecircle", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestStateGraphDeadlockColoring(t *testing.T) {
	g := sg.MustFromProgram(workload.Ring(3))
	s := BuildStateGraph(g, 0)
	found := false
	for _, st := range s.States {
		if st.Deadlock {
			found = true
		}
	}
	if !found {
		t.Fatal("ring deadlock state missing")
	}
	if !strings.Contains(s.DOT(), "salmon") {
		t.Fatal("deadlock coloring missing")
	}
}

func TestStateGraphTruncation(t *testing.T) {
	g := sg.MustFromProgram(workload.ForkFan(4, 2))
	s := BuildStateGraph(g, 5)
	if !s.Truncated {
		t.Fatal("cap not honored")
	}
	if len(s.States) > 5 {
		t.Fatalf("states=%d over cap", len(s.States))
	}
}

// The state graph must agree with Explore on the same graph: identical
// state counts, and identical terminal classification totals.
func TestQuickStateGraphMatchesExplore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(2)
		cfg.StmtsPerTask = 1 + rng.Intn(3)
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		res := Explore(g, Options{MaxStates: 100000, MaxAnomalies: 1 << 20})
		s := BuildStateGraph(g, 100000)
		if res.Truncated || s.Truncated {
			return true
		}
		if len(s.States) != res.States {
			return false
		}
		anomalous, deadlock, stall, completed := 0, false, false, false
		for _, st := range s.States {
			if st.Anomalous {
				anomalous++
			}
			if st.Deadlock {
				deadlock = true
			}
			if st.Stall {
				stall = true
			}
			if st.Completed {
				completed = true
			}
		}
		return anomalous == res.AnomalousWaves &&
			deadlock == res.Deadlock &&
			stall == res.Stall &&
			completed == res.Completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
