package waves

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/sg"
	"repro/internal/workload"
)

// Invariants of the wave closure on random loop-free programs:
//
//   - progress is monotone, so every maximal path terminates: a complete
//     exploration reports success or an anomaly (or both, on different
//     branches);
//   - anomaly classification and Theorem 1 agree on every recorded wave;
//   - the deadlock/stall flags match the recorded anomalies when nothing
//     was dropped by the anomaly cap.
func TestQuickExplorationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2 + rng.Intn(3)
		cfg.StmtsPerTask = 1 + rng.Intn(4)
		cfg.BranchProb = 0.3
		p := workload.Random(rng, cfg)
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		res := Explore(g, Options{MaxStates: 300000, MaxAnomalies: 1 << 20})
		if res.Truncated {
			return true
		}
		if !res.Completed && res.AnomalousWaves == 0 {
			t.Logf("no terminal outcome for\n%s", p)
			return false
		}
		if res.States < 1 || res.AnomalousWaves != len(res.Anomalies) {
			return false
		}
		sawDeadlock, sawStall := false, false
		for _, a := range res.Anomalies {
			if len(a.StallNodes) > 0 {
				sawStall = true
			}
			if len(a.DeadlockSet) > 0 {
				sawDeadlock = true
			}
			if err := VerifyTheorem1(g, a); err != nil {
				t.Logf("%v in\n%s", err, p)
				return false
			}
			// Wave sanity: one entry per task, each a task node or e.
			if len(a.Wave) != len(g.Tasks) {
				return false
			}
			for ti, n := range a.Wave {
				if n != g.E && g.TaskOf[n] != ti {
					return false
				}
			}
		}
		return sawDeadlock == res.Deadlock && sawStall == res.Stall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The closure is deterministic: two explorations of one graph agree on
// every reported statistic.
func TestQuickExplorationDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.Random(rng, workload.DefaultConfig())
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		a := Explore(g, Options{})
		b := Explore(g, Options{})
		return a.States == b.States && a.Transitions == b.Transitions &&
			a.Completed == b.Completed && a.Deadlock == b.Deadlock &&
			a.Stall == b.Stall && a.AnomalousWaves == b.AnomalousWaves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Unrolling is an over-approximation: any program whose unrolled form is
// certified deadlock-free by exploring the unrolled graph must also be
// deadlock-free under exact bounded-loop semantics. (The converse can
// fail: the unrolled form adds paths.)
func TestQuickUnrollOverApproximates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		cfg.Tasks = 2
		cfg.StmtsPerTask = 2 + rng.Intn(2)
		cfg.LoopProb = 0.3
		cfg.BranchProb = 0.1
		p := workload.Random(rng, cfg)
		exact, err := ExploreProgram(p, Options{MaxStates: 200000})
		if err != nil || exact.Truncated {
			return true
		}
		unrolledGraph, err := sg.FromProgram(cfgUnroll(p))
		if err != nil {
			return false
		}
		over := Explore(unrolledGraph, Options{MaxStates: 200000})
		if over.Truncated {
			return true
		}
		if exact.Deadlock && !over.Deadlock {
			t.Logf("unrolled exploration lost a deadlock:\n%s", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func cfgUnroll(p *lang.Program) *lang.Program { return cfg.Unroll(p) }
