package waves

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/sg"
)

func explore(t *testing.T, src string) *Result {
	t.Helper()
	res, err := ExploreProgram(lang.MustParse(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("exploration truncated on small program")
	}
	return res
}

func TestHandshakeCompletes(t *testing.T) {
	res := explore(t, `
task t1 is
begin
  t2.sig1;
  accept sig2;
end;
task t2 is
begin
  accept sig1;
  t1.sig2;
end;
`)
	if !res.Completed {
		t.Fatal("handshake did not complete")
	}
	if res.HasAnomaly() || res.Deadlock || res.Stall {
		t.Fatalf("handshake flagged anomalous: %+v", res)
	}
	// Waves: (r,u) -> (s,v) -> (e,e): exactly 3 states.
	if res.States != 3 {
		t.Fatalf("states=%d, want 3", res.States)
	}
}

func TestReversedHandshakeDeadlocks(t *testing.T) {
	res := explore(t, `
task t1 is
begin
  accept sig1;
  t2.sig2;
end;
task t2 is
begin
  accept sig2;
  t1.sig1;
end;
`)
	if !res.Deadlock {
		t.Fatal("deadlock missed")
	}
	if res.Completed {
		t.Fatal("always-deadlocking program reported a completion")
	}
	if res.Stall {
		t.Fatalf("pure deadlock misclassified with a stall: %+v", res.Anomalies)
	}
	if len(res.Anomalies) != 1 || len(res.Anomalies[0].DeadlockSet) != 2 {
		t.Fatalf("anomalies=%+v", res.Anomalies)
	}
}

func TestStallClassification(t *testing.T) {
	// Figure 2(a) style: after the go rendezvous, t2 waits on an accept
	// nobody can ever signal.
	res := explore(t, `
task t1 is
begin
  accept go;
end;
task t2 is
begin
  t1.go;
  z: accept done;
end;
`)
	if !res.Stall {
		t.Fatal("stall missed")
	}
	if res.Deadlock {
		t.Fatal("stall misclassified as deadlock")
	}
	if res.Completed {
		t.Fatal("stalling program cannot complete")
	}
}

func TestMixedChoiceBothOutcomes(t *testing.T) {
	// t1 picks a branch: one branch handshakes correctly, the other
	// deadlocks against t2's fixed order.
	res := explore(t, `
task t1 is
begin
  if lucky then
    t2.m;
    accept r;
  else
    accept r;
    t2.m;
  end if;
end;
task t2 is
begin
  accept m;
  t1.r;
end;
`)
	if !res.Completed {
		t.Fatal("lucky branch should complete")
	}
	if !res.Deadlock {
		t.Fatal("unlucky branch should deadlock")
	}
}

func TestRingDeadlock(t *testing.T) {
	res := explore(t, `
task p0 is
begin
  p1.fork;
  accept fork;
end;
task p1 is
begin
  p2.fork;
  accept fork;
end;
task p2 is
begin
  p0.fork;
  accept fork;
end;
`)
	if !res.Deadlock {
		t.Fatal("ring deadlock missed")
	}
	// Some interleavings complete (e.g. p0 sends to p1 only after p1 has
	// cycled)... in this all-send-first ring no rendezvous is ever
	// possible: each send targets the next task's accept which sits
	// behind that task's own send. Actually p1's accept fork is behind
	// its send; no pair is ever simultaneously ready.
	if res.Completed {
		t.Fatal("all-send-first ring cannot complete")
	}
}

func TestBoundedLoopsExact(t *testing.T) {
	// Producer sends exactly 3; consumer accepts exactly 3: completes.
	res := explore(t, `
task prod is
begin
  loop 3 times
    cons.item;
  end loop;
end;
task cons is
begin
  loop 3 times
    accept item;
  end loop;
end;
`)
	if !res.Completed || res.HasAnomaly() {
		t.Fatalf("balanced bounded loops: %+v", res)
	}
	// Mismatched counts: consumer wants one more -> stall.
	res2 := explore(t, `
task prod is
begin
  loop 2 times
    cons.item;
  end loop;
end;
task cons is
begin
  loop 3 times
    accept item;
  end loop;
end;
`)
	if !res2.Stall {
		t.Fatal("count mismatch should stall")
	}
}

func TestWhileLoopNondeterministic(t *testing.T) {
	// A while-loop consumer can stop at any time; producer sends once.
	// Some interleavings complete, none deadlock; a stall occurs when the
	// consumer exits before accepting (producer stuck)... except the
	// consumer CFG always allows accepting later? No: once at e it cannot
	// go back, so the producer stalls in that interleaving.
	res := explore(t, `
task prod is
begin
  cons.item;
end;
task cons is
begin
  while more loop
    accept item;
  end loop;
end;
`)
	if !res.Completed {
		t.Fatal("some interleaving completes")
	}
	if !res.Stall {
		t.Fatal("early-exit interleaving should stall the producer")
	}
	if res.Deadlock {
		t.Fatal("no circular wait exists here")
	}
}

func TestTruncation(t *testing.T) {
	res, err := ExploreProgram(lang.MustParse(`
task a is
begin
  loop 10 times
    b.m;
  end loop;
end;
task b is
begin
  loop 10 times
    accept m;
  end loop;
end;
`), Options{MaxStates: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("truncation not reported")
	}
}

func TestTheorem1PartitionOnAnomalies(t *testing.T) {
	// Every anomalous wave must satisfy the Theorem 1 partition.
	srcs := []string{
		`
task t1 is
begin
  accept sig1;
  t2.sig2;
end;
task t2 is
begin
  accept sig2;
  t1.sig1;
end;
`,
		`
task t1 is
begin
  accept go;
end;
task t2 is
begin
  t1.go;
  accept done;
end;
`,
		`
task a is
begin
  if c then
    b.m;
  end if;
end;
task b is
begin
  accept m;
end;
`,
	}
	for i, src := range srcs {
		p := lang.MustParse(src)
		g := sg.MustFromProgram(p)
		res := Explore(g, Options{})
		for _, a := range res.Anomalies {
			if err := VerifyTheorem1(g, a); err != nil {
				t.Fatalf("case %d: %v (wave %v)", i, err, a.Wave)
			}
		}
	}
}

func TestManySendersOneAccept(t *testing.T) {
	// Any number of tasks can signal one accepting task; two senders race
	// for one accept: one sender must stall.
	res := explore(t, `
task srv is
begin
  accept req;
end;
task c1 is
begin
  srv.req;
end;
task c2 is
begin
  srv.req;
end;
`)
	if res.Completed {
		t.Fatal("one request must always be left over")
	}
	if !res.Stall {
		t.Fatal("losing client should stall")
	}
}

func TestTraces(t *testing.T) {
	// The mixed-choice program deadlocks after one successful rendezvous
	// on the unlucky branch? No — the unlucky branch deadlocks with zero
	// rendezvous... use a two-phase program: phase 1 handshakes, phase 2
	// reverses the order and deadlocks, so the trace has length >= 1.
	res, err := ExploreProgram(lang.MustParse(`
task t1 is
begin
  a: t2.m;
  b: accept r;
  c: accept r;
end;
task t2 is
begin
  x: accept m;
  y: t1.r;
  z: t1.r;
end;
`), Options{Traces: true})
	if err != nil {
		t.Fatal(err)
	}
	// This program completes (a-x, b-y, c-z); build a deadlocking one.
	if res.HasAnomaly() {
		t.Fatalf("unexpected anomaly: %+v", res.Anomalies)
	}
	res2, err := ExploreProgram(lang.MustParse(`
task t1 is
begin
  a: t2.m;
  b: accept r;
  c: t2.m;
end;
task t2 is
begin
  x: accept m;
  y: accept m;
  z: t1.r;
end;
`), Options{Traces: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.HasAnomaly() {
		t.Fatal("expected an anomaly")
	}
	found := false
	for _, a := range res2.Anomalies {
		if len(a.Trace) >= 1 {
			found = true
			// Every traced rendezvous must be a real sync pair.
			g, _ := ExploreProgramGraph(lang.MustParse(`
task t1 is
begin
  a: t2.m;
  b: accept r;
  c: t2.m;
end;
task t2 is
begin
  x: accept m;
  y: accept m;
  z: t1.r;
end;
`))
			for _, r := range a.Trace {
				if !g.HasSyncEdge(r.U, r.V) {
					t.Fatalf("trace step %v is not a sync pair", r)
				}
			}
		}
	}
	if !found {
		t.Fatal("no anomaly carried a nonempty trace")
	}
}

func TestRendezvousFreeProgram(t *testing.T) {
	res := explore(t, `
task a is
begin
  null;
end;
task b is
begin
  null;
end;
`)
	if !res.Completed || res.HasAnomaly() {
		t.Fatalf("trivial program: %+v", res)
	}
	if res.States != 1 {
		t.Fatalf("states=%d, want 1", res.States)
	}
}
