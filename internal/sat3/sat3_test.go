package sat3

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveTinyFormulas(t *testing.T) {
	cases := []struct {
		f    Formula
		want bool
	}{
		{Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}}}, true},
		{Formula{NumVars: 3, Clauses: []Clause{{-1, -2, -3}}}, true},
		// (a|b|c) & (~a|~b|~c) satisfiable.
		{Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}, {-1, -2, -3}}}, true},
		// Unsatisfiable: force a true and a false via 3-literal paddings
		// over 3 vars: enumerate all 8 sign patterns of (x,y,z) — the
		// conjunction of all 8 clauses is unsatisfiable.
		{Formula{NumVars: 3, Clauses: []Clause{
			{1, 2, 3}, {1, 2, -3}, {1, -2, 3}, {1, -2, -3},
			{-1, 2, 3}, {-1, 2, -3}, {-1, -2, 3}, {-1, -2, -3},
		}}, false},
	}
	for i, c := range cases {
		sat, assign := Solve(&c.f)
		if sat != c.want {
			t.Fatalf("case %d: sat=%v, want %v", i, sat, c.want)
		}
		if sat && !c.f.Eval(assign) {
			t.Fatalf("case %d: returned assignment does not satisfy", i)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Formula{
		{NumVars: 0},
		{NumVars: 2, Clauses: []Clause{{1, 2, 3}}},  // var out of range
		{NumVars: 3, Clauses: []Clause{{1, -1, 2}}}, // repeated variable
		{NumVars: 3, Clauses: []Clause{{0, 1, 2}}},  // zero literal
		{NumVars: 3}, // no clauses
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, f)
		}
	}
	good := Formula{NumVars: 3, Clauses: []Clause{{1, -2, 3}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolveAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 3 + rng.Intn(4)
		nc := 1 + rng.Intn(8)
		fm := Random(rng, nv, nc)
		if err := fm.Validate(); err != nil {
			return false
		}
		sat, assign := Solve(fm)
		if sat && !fm.Eval(assign) {
			return false
		}
		return sat == bruteForce(fm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func bruteForce(f *Formula) bool {
	n := f.NumVars
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestLitHelpers(t *testing.T) {
	if Lit(-4).Var() != 4 || Lit(4).Var() != 4 {
		t.Fatal("Var wrong")
	}
	if Lit(-4).Pos() || !Lit(4).Pos() {
		t.Fatal("Pos wrong")
	}
	if Lit(-2).String() != "~v2" || Lit(2).String() != "v2" {
		t.Fatal("String wrong")
	}
}
