package sat3

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sg"
)

func theorem2Analyzer(t *testing.T, f *Formula) *core.Analyzer {
	t.Helper()
	p, err := BuildTheorem2(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sg.FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewAnalyzer(g)
}

func TestTheorem2ConstructionShape(t *testing.T) {
	f := &Formula{NumVars: 4, Clauses: []Clause{{1, 2, -3}, {1, 3, -4}}}
	p, err := BuildTheorem2(f)
	if err != nil {
		t.Fatal(err)
	}
	// 6 literal tasks + 6 anti-ordering tasks + ordering tasks for v3, v4
	// (both polarities)... v1 appears only positive, v2 only positive,
	// v3 both (pos in clause 2? (1,3,-4): v3 positive; clause 1 has -3)
	// => ordered; v4 negative only => no ordering task.
	wantTasks := 6 + 6 + 1 // Ord_3 only
	if len(p.Tasks) != wantTasks {
		names := ""
		for _, task := range p.Tasks {
			names += task.Name + " "
		}
		t.Fatalf("tasks=%d (%s), want %d", len(p.Tasks), names, wantTasks)
	}
	if p.TaskByName("Ord_3") == nil {
		t.Fatal("Ord_3 missing")
	}
	if p.TaskByName("Ord_4") != nil || p.TaskByName("Ord_1") != nil {
		t.Fatal("single-polarity variable got an ordering task")
	}
}

func TestTheorem2OrderingFacts(t *testing.T) {
	// v1 appears positive in clause 0 and negative in clause 1: the
	// ordering machinery must make the positive top precede the negative
	// top, and leave unrelated top pairs unordered.
	f := &Formula{NumVars: 5, Clauses: []Clause{{1, 2, 3}, {-1, 4, 5}}}
	an := theorem2Analyzer(t, f)
	g := an.SG
	posTop := g.NodeByLabel(TopLabel(0, 0)) // literal v1
	negTop := g.NodeByLabel(TopLabel(1, 0)) // literal ~v1
	other := g.NodeByLabel(TopLabel(0, 1))  // literal v2
	if posTop < 0 || negTop < 0 || other < 0 {
		t.Fatal("top labels missing")
	}
	if !an.Ord.Precede.Get(posTop, negTop) {
		t.Fatal("positive top must precede negative top of the same variable")
	}
	if an.Ord.Sequenceable(posTop, other) {
		t.Fatal("tops of different variables must stay unordered")
	}
	if an.Ord.Sequenceable(negTop, other) {
		t.Fatal("negative top ordered with unrelated top")
	}
}

func TestTheorem2NegativeTopsUnordered(t *testing.T) {
	// Two negative occurrences of one variable: their tops must NOT be
	// ordered with each other (the anti-ordering tasks guarantee an
	// execution where either can wait while the other proceeds).
	f := &Formula{NumVars: 5, Clauses: []Clause{{-1, 2, 3}, {-1, 4, 5}, {1, 2, 4}}}
	an := theorem2Analyzer(t, f)
	g := an.SG
	neg1 := g.NodeByLabel(TopLabel(0, 0))
	neg2 := g.NodeByLabel(TopLabel(1, 0))
	if an.Ord.Sequenceable(neg1, neg2) {
		t.Fatal("negative tops of the same variable must be unordered")
	}
}

func TestTheorem2SatisfiableHasCycle(t *testing.T) {
	// (v1 | v2 | v3) & (~v1 | v2 | v3): satisfiable (set v2).
	f := &Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}, {-1, 2, 3}}}
	an := theorem2Analyzer(t, f)
	has, complete := Theorem2HasValidCycle(an, 0)
	if !complete {
		t.Fatal("enumeration truncated")
	}
	if !has {
		t.Fatal("satisfiable formula produced no valid cycle")
	}
}

func TestTheorem2UnsatisfiableStyleConflict(t *testing.T) {
	// A cycle choosing v1 in clause 0 and ~v1 in clause 1 must be ruled
	// out by sequenceability when those are the only choices:
	// (v1|v2|v3) & (~v1|~2?...) — build a formula whose ONLY consistent
	// selections require avoiding the conflicting pair, then flip to a
	// formula with no consistent selection at all. With 3 literals per
	// clause a 2-clause formula is always "selectable", so conflict-only
	// selection needs all pairs conflicting: (v1,v2,v3) vs
	// (~v1,~v2,~v3)... any non-conflicting pick (v1 with ~v2) exists, so
	// instead verify the *pair-level* claim directly: every cycle that
	// picks v1 in clause 0 and ~v1 in clause 1 has sequenceable heads.
	f := &Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}, {-1, -2, -3}}}
	an := theorem2Analyzer(t, f)
	cycles, complete := an.EnumerateCycles(0)
	if !complete {
		t.Fatal("enumeration truncated")
	}
	g := an.SG
	conflict := 0
	for _, ci := range cycles {
		heads := map[int]bool{}
		for _, h := range ci.Heads {
			heads[h] = true
		}
		for v := 0; v < 3; v++ {
			pos := g.NodeByLabel(TopLabel(0, v))
			neg := g.NodeByLabel(TopLabel(1, v))
			if heads[pos] && heads[neg] {
				conflict++
				if !an.Ord.Sequenceable(pos, neg) {
					t.Fatalf("conflicting heads v%d not sequenceable", v+1)
				}
			}
		}
	}
	if conflict == 0 {
		t.Fatal("no conflicting-selection cycles enumerated; gadget wiring suspect")
	}
}

// The headline equivalence of Theorem 2, validated against DPLL on random
// small formulas: the gadget program's sync graph has a literal-task cycle
// with pairwise-unsequenceable heads iff the formula is satisfiable.
func TestQuickTheorem2MatchesDPLL(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 3 + rng.Intn(3)
		nc := 2 + rng.Intn(2) // keep 3^m cycle enumeration small
		fm := Random(rng, nv, nc)
		p, err := BuildTheorem2(fm)
		if err != nil {
			return false
		}
		g, err := sg.FromProgram(p)
		if err != nil {
			return false
		}
		an := core.NewAnalyzer(g)
		has, complete := Theorem2HasValidCycle(an, 60000)
		if !complete {
			return true // skip
		}
		sat, _ := Solve(fm)
		if has != sat {
			t.Logf("mismatch: sat=%v cycle=%v for %s", sat, has, fm)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check: the selection-based checker agrees with full CLG cycle
// enumeration (restricted to literal tasks, heads filtered pairwise) on
// small formulas. This justifies using the fast selection form on bigger
// ones, where multi-wrap cycles drown the generic enumerator.
func TestTheorem2SelectionMatchesGraphEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		fm := Random(rng, 3+rng.Intn(2), 2)
		an := theorem2Analyzer(t, fm)
		fast, complete := Theorem2HasValidCycle(an, 0)
		if !complete {
			t.Fatal("selection enumeration truncated on tiny input")
		}
		g := an.SG
		inLiteralTask := func(n int) bool {
			task := g.Nodes[n].Task
			return len(task) >= 2 && task[0] == 'L' && task[1] == '_'
		}
		cycles, ok := an.EnumerateCyclesRestricted(300000, inLiteralTask)
		if !ok {
			t.Skip("graph enumeration truncated")
		}
		slow := false
		for _, ci := range cycles {
			good := true
			for i, a := range ci.Heads {
				for _, b := range ci.Heads[i+1:] {
					if a != b && an.Ord.Sequenceable(a, b) {
						good = false
					}
				}
			}
			if good {
				slow = true
				break
			}
		}
		if fast != slow {
			t.Fatalf("selection=%v graph=%v for %s", fast, slow, fm)
		}
	}
}

// unsat3 is the canonical unsatisfiable 3-variable formula: all eight
// sign patterns as clauses.
func unsat3() *Formula {
	return &Formula{NumVars: 3, Clauses: []Clause{
		{1, 2, 3}, {1, 2, -3}, {1, -2, 3}, {1, -2, -3},
		{-1, 2, 3}, {-1, 2, -3}, {-1, -2, 3}, {-1, -2, -3},
	}}
}

// The unsatisfiable side of the equivalence, pinned on the canonical
// 8-clause UNSAT formula: no literal-task cycle with pairwise
// unsequenceable heads may exist.
func TestTheorem2UnsatisfiableFormulaHasNoCycle(t *testing.T) {
	fm := unsat3()
	if sat, _ := Solve(fm); sat {
		t.Fatal("fixture is satisfiable")
	}
	an := theorem2Analyzer(t, fm)
	has, complete := Theorem2HasValidCycle(an, 0)
	if !complete {
		t.Fatal("truncated")
	}
	if has {
		t.Fatal("unsatisfiable formula produced a valid cycle; reduction broken")
	}
}

func TestTheorem3UnsatisfiableFormulaHasNoCycle(t *testing.T) {
	fm := unsat3()
	g, err := BuildTheorem3(fm)
	if err != nil {
		t.Fatal(err)
	}
	an := core.NewAnalyzer(g)
	has, complete := Theorem3HasValidCycle(an, 0)
	if !complete {
		t.Fatal("truncated")
	}
	if has {
		t.Fatal("unsatisfiable formula produced a valid cycle; reduction broken")
	}
}

// Denser formulas (3 vars, 6-8 clauses) mix nearly-unsatisfiable
// instances; the selection checker makes them tractable.
func TestQuickTheorem2DenseFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fm := Random(rng, 3, 6+rng.Intn(3))
		an := theorem2Analyzer(t, fm)
		has, complete := Theorem2HasValidCycle(an, 0)
		if !complete {
			return true
		}
		sat, _ := Solve(fm)
		if has != sat {
			t.Logf("mismatch: sat=%v cycle=%v for %s", sat, has, fm)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTheorem3DenseFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fm := Random(rng, 3, 6+rng.Intn(3))
		g, err := BuildTheorem3(fm)
		if err != nil {
			return false
		}
		an := core.NewAnalyzer(g)
		has, complete := Theorem3HasValidCycle(an, 0)
		if !complete {
			return true
		}
		sat, _ := Solve(fm)
		if has != sat {
			t.Logf("mismatch: sat=%v cycle=%v for %s", sat, has, fm)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem3ConstructionShape(t *testing.T) {
	f := &Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}, {-1, 2, 3}}}
	g, err := BuildTheorem3(f)
	if err != nil {
		t.Fatal(err)
	}
	// 6 tasks, each 1 top + 3 signaling = 24 rendezvous nodes + b,e.
	if g.N() != 26 {
		t.Fatalf("N=%d", g.N())
	}
	// Artificial accept-accept sync edge between tops of v1's pos/neg.
	pos := g.NodeByLabel(TopLabel(0, 0))
	neg := g.NodeByLabel(TopLabel(1, 0))
	if !g.HasSyncEdge(pos, neg) {
		t.Fatal("artificial pos/neg top sync edge missing")
	}
}

func TestQuickTheorem3MatchesDPLL(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 3 + rng.Intn(3)
		nc := 2 + rng.Intn(2)
		fm := Random(rng, nv, nc)
		g, err := BuildTheorem3(fm)
		if err != nil {
			return false
		}
		an := core.NewAnalyzer(g)
		has, complete := Theorem3HasValidCycle(an, 60000)
		if !complete {
			return true
		}
		sat, _ := Solve(fm)
		if has != sat {
			t.Logf("mismatch: sat=%v cycle=%v for %s", sat, has, fm)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The artificial sync edges of Theorem 3 may not create new cycles: a
// cycle through such an edge would enter and leave a top node through
// sync edges, which the CLG construction forbids (constraint 1b).
func TestTheorem3ArtificialEdgesAddNoCycles(t *testing.T) {
	f := &Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}, {-1, -2, -3}}}
	withEdges, err := BuildTheorem3(f)
	if err != nil {
		t.Fatal(err)
	}
	anWith := core.NewAnalyzer(withEdges)
	cWith, ok1 := anWith.EnumerateCycles(0)
	// Rebuild without the artificial edges by constructing from a
	// formula with no complementary pairs (rename negatives to fresh
	// vars).
	f2 := &Formula{NumVars: 6, Clauses: []Clause{{1, 2, 3}, {4, 5, 6}}}
	without, err := BuildTheorem3(f2)
	if err != nil {
		t.Fatal(err)
	}
	anWithout := core.NewAnalyzer(without)
	cWithout, ok2 := anWithout.EnumerateCycles(0)
	if !ok1 || !ok2 {
		t.Fatal("enumeration truncated")
	}
	if len(cWith) != len(cWithout) {
		t.Fatalf("artificial edges changed cycle count: %d vs %d", len(cWith), len(cWithout))
	}
}
