package sat3

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/sg"
)

// This file reproduces the paper's Appendix A constructions.
//
// Theorem 2 (NP-hardness of constraints 1 + 3a): from a 3-CNF formula,
// build a MiniAda program of literal tasks, anti-ordering tasks and
// per-variable ordering tasks (Figures 6-8) such that the sync graph has a
// deadlock cycle whose head nodes are pairwise unsequenceable iff the
// formula is satisfiable.
//
// Theorem 3 (NP-completeness of constraints 1 + 2): from the same formula,
// build a raw sync graph — literal tasks without ordering machinery, plus
// artificial sync edges joining the top nodes of positive and negative
// tasks of each variable — such that a cycle with no two head nodes joined
// by a sync edge exists iff the formula is satisfiable. As the paper notes,
// this graph does not generally correspond to any program, which is why it
// is built with sg.Builder rather than through MiniAda.

// occurrence identifies one literal occurrence: clause i, position j.
type occurrence struct{ i, j int }

// litTaskName names the literal task of clause i, position j (0-based).
func litTaskName(i, j int) string { return fmt.Sprintf("L_%d_%d", i, j) }

// antiTaskName names the anti-ordering task of a literal task.
func antiTaskName(i, j int) string { return fmt.Sprintf("A_%d_%d", i, j) }

// ordTaskName names the ordering task of variable v.
func ordTaskName(v int) string { return fmt.Sprintf("Ord_%d", v) }

// TopLabel is the statement label of the top (accept) node of literal task
// (i, j); tests and checkers use it to locate head nodes.
func TopLabel(i, j int) string { return fmt.Sprintf("top_%d_%d", i, j) }

// occurrences returns the positive and negative occurrence lists per
// variable (1-based).
func occurrences(f *Formula) (pos, neg [][]occurrence) {
	pos = make([][]occurrence, f.NumVars+1)
	neg = make([][]occurrence, f.NumVars+1)
	for i, c := range f.Clauses {
		for j, l := range c {
			if l.Pos() {
				pos[l.Var()] = append(pos[l.Var()], occurrence{i, j})
			} else {
				neg[l.Var()] = append(neg[l.Var()], occurrence{i, j})
			}
		}
	}
	return pos, neg
}

// signalingGroup builds the conditional send group of Figure 7: exactly
// one of three sends to the top nodes of the next clause's tasks executes.
func signalingGroup(i, j, nextClause int) []lang.Stmt {
	send := func(k int) lang.Stmt {
		s := &lang.Send{Target: litTaskName(nextClause, k), Msg: "top"}
		s.SetLabel(fmt.Sprintf("sig_%d_%d_%d", i, j, k))
		return s
	}
	inner := &lang.If{
		Cond: fmt.Sprintf("pick_%d_%d_b", i, j),
		Then: []lang.Stmt{send(1)},
		Else: []lang.Stmt{send(2)},
	}
	return []lang.Stmt{&lang.If{
		Cond: fmt.Sprintf("pick_%d_%d_a", i, j),
		Then: []lang.Stmt{send(0)},
		Else: []lang.Stmt{inner},
	}}
}

// BuildTheorem2 constructs the Theorem 2 program for f.
func BuildTheorem2(f *Formula) (*lang.Program, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	pos, neg := occurrences(f)
	// Ordering tasks exist only for variables with both polarities; for
	// single-polarity variables ordering constraints are vacuous.
	ordered := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		ordered[v] = len(pos[v]) > 0 && len(neg[v]) > 0
	}

	p := &lang.Program{}
	m := len(f.Clauses)
	for i, c := range f.Clauses {
		q := (i + 1) % m
		for j, l := range c {
			v := l.Var()
			top := &lang.Accept{Msg: "top"}
			top.SetLabel(TopLabel(i, j))
			var body []lang.Stmt
			if l.Pos() {
				// Figure 7(a): top; signaling group; order-send last.
				body = append(body, top)
				body = append(body, signalingGroup(i, j, q)...)
				if ordered[v] {
					ord := &lang.Send{Target: ordTaskName(v), Msg: fmt.Sprintf("p_%d_%d", i, j)}
					ord.SetLabel(fmt.Sprintf("ordsend_%d_%d", i, j))
					body = append(body, ord)
				}
			} else {
				// Figure 7(b): order-send first; top; signaling group.
				if ordered[v] {
					ord := &lang.Send{Target: ordTaskName(v), Msg: fmt.Sprintf("n_%d_%d", i, j)}
					ord.SetLabel(fmt.Sprintf("ordsend_%d_%d", i, j))
					body = append(body, ord)
				}
				body = append(body, top)
				body = append(body, signalingGroup(i, j, q)...)
			}
			p.Tasks = append(p.Tasks, &lang.Task{Name: litTaskName(i, j), Body: body})

			// Anti-ordering task: a single free sender to the top node,
			// so tops are not forced to wait for the previous clause.
			anti := &lang.Send{Target: litTaskName(i, j), Msg: "top"}
			anti.SetLabel(fmt.Sprintf("anti_%d_%d", i, j))
			p.Tasks = append(p.Tasks, &lang.Task{
				Name: antiTaskName(i, j), Body: []lang.Stmt{anti},
			})
		}
	}
	// Ordering tasks (Figure 7(c)): all positive order-accepts, then all
	// negative ones, forcing every negative top after every positive top
	// of the same variable.
	for v := 1; v <= f.NumVars; v++ {
		if !ordered[v] {
			continue
		}
		var body []lang.Stmt
		for _, o := range pos[v] {
			a := &lang.Accept{Msg: fmt.Sprintf("p_%d_%d", o.i, o.j)}
			a.SetLabel(fmt.Sprintf("ordacc_p_%d_%d", o.i, o.j))
			body = append(body, a)
		}
		for _, o := range neg[v] {
			a := &lang.Accept{Msg: fmt.Sprintf("n_%d_%d", o.i, o.j)}
			a.SetLabel(fmt.Sprintf("ordacc_n_%d_%d", o.i, o.j))
			body = append(body, a)
		}
		p.Tasks = append(p.Tasks, &lang.Task{Name: ordTaskName(v), Body: body})
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sat3: theorem 2 construction invalid: %w", err)
	}
	p.AssignLabels()
	return p, nil
}

// Theorem2HasValidCycle reports whether the gadget's sync graph contains a
// deadlock cycle through the literal tasks whose head nodes are pairwise
// unsequenceable — the certificate Theorem 2 equates with satisfiability.
//
// Per the theorem's own argument, every valid cycle corresponds to a
// selection of one literal task per clause (cycles wrapping the clause
// ring more than once only add same-clause heads, which are never
// sequenceable, so single-wrap selections are complete); the checker
// therefore enumerates the 3^m selections, validating every control and
// sync step against the actual graph rather than assuming the gadget's
// shape. The generic CLG cycle enumerator agrees with this on small
// formulas (cross-checked in tests) but drowns in multi-wrap cycles on
// larger ones.
//
// The limit caps the number of selections (0 = default 1<<20); the second
// result is false when it was hit.
func Theorem2HasValidCycle(an *core.Analyzer, limit int) (bool, bool) {
	return selectionCycleExists(an, limit, func(a, b int) bool {
		return !an.Ord.Sequenceable(a, b)
	})
}

// Theorem3HasValidCycle reports whether a cycle exists with no two head
// nodes joined by a sync edge (constraints 1 + 2), for the Theorem 3
// graph, by the same selection enumeration.
func Theorem3HasValidCycle(an *core.Analyzer, limit int) (bool, bool) {
	g := an.SG
	return selectionCycleExists(an, limit, func(a, b int) bool {
		return !g.HasSyncEdge(a, b)
	})
}

// selectionCycleExists enumerates one-literal-per-clause selections and
// reports whether some selection forms a graph-validated cycle whose head
// (top) nodes satisfy headOK pairwise.
func selectionCycleExists(an *core.Analyzer, limit int, headOK func(a, b int) bool) (bool, bool) {
	if limit <= 0 {
		limit = 1 << 20
	}
	g := an.SG
	// Recover the clause/position structure from node labels.
	tops := map[[2]int]int{}
	m := 0
	for _, n := range g.Nodes {
		var i, j int
		if _, err := fmt.Sscanf(n.Label, "top_%d_%d", &i, &j); err == nil && n.Label == TopLabel(i, j) {
			tops[[2]int{i, j}] = n.ID
			if i+1 > m {
				m = i + 1
			}
		}
	}
	if m == 0 {
		return false, true
	}
	// linked(i, j, k) verifies the graph carries the cycle step from
	// literal (i, j) to literal ((i+1)%m, k): a control path from the top
	// to some node with a sync edge to the next top.
	linked := func(i, j, k int) bool {
		from := tops[[2]int{i, j}]
		to := tops[[2]int{(i + 1) % m, k}]
		reach := g.Control.ReachableFrom(g.Control.Succ(from)...)
		for _, s := range g.Sync[to] {
			if reach[s] && g.TaskOf[s] == g.TaskOf[from] {
				return true
			}
		}
		return false
	}
	sel := make([]int, m)
	tried := 0
	complete := true
	var rec func(i int) bool
	rec = func(i int) bool {
		if tried >= limit {
			complete = false
			return false
		}
		if i == m {
			tried++
			for a := 0; a < m; a++ {
				if !linked(a, sel[a], sel[(a+1)%m]) {
					return false
				}
			}
			for a := 0; a < m; a++ {
				for b := a + 1; b < m; b++ {
					if !headOK(tops[[2]int{a, sel[a]}], tops[[2]int{b, sel[b]}]) {
						return false
					}
				}
			}
			return true
		}
		for j := 0; j < 3; j++ {
			if _, ok := tops[[2]int{i, j}]; !ok {
				continue
			}
			sel[i] = j
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0), complete
}

// BuildTheorem3 constructs the Theorem 3 sync graph for f: one task per
// literal occurrence holding a top accept and a three-way signaling group,
// sync edges from each signaling node to the corresponding top of the next
// clause group, and an artificial sync edge joining the tops of every
// positive/negative pair of tasks for the same variable.
func BuildTheorem3(f *Formula) (*sg.Graph, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	b := sg.NewBuilder()
	m := len(f.Clauses)
	tops := make([][]int, m)
	sigs := make([][][3]int, m)
	for i := range f.Clauses {
		tops[i] = make([]int, 3)
		sigs[i] = make([][3]int, 3)
		for j := 0; j < 3; j++ {
			ti := b.AddTask(litTaskName(i, j))
			sig := lang.Signal{Task: litTaskName(i, j), Msg: "top"}
			top := b.AddNode(ti, cfg.KindAccept, sig, TopLabel(i, j))
			b.AddControl(b.B(), top)
			tops[i][j] = top
			for k := 0; k < 3; k++ {
				nsig := lang.Signal{Task: litTaskName((i+1)%m, k), Msg: "top"}
				s := b.AddNode(ti, cfg.KindSend, nsig, fmt.Sprintf("sig_%d_%d_%d", i, j, k))
				b.AddControl(top, s)
				b.AddControl(s, b.E())
				sigs[i][j][k] = s
			}
		}
	}
	// Sync edges: signaling node k of clause i pairs with top k of clause
	// (i+1) mod m.
	for i := range f.Clauses {
		q := (i + 1) % m
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				b.SyncPair(sigs[i][j][k], tops[q][k])
			}
		}
	}
	// Artificial sync edges between complementary tops of one variable.
	pos, neg := occurrences(f)
	for v := 1; v <= f.NumVars; v++ {
		for _, po := range pos[v] {
			for _, no := range neg[v] {
				b.SyncPair(tops[po.i][po.j], tops[no.i][no.j])
			}
		}
	}
	return b.Finish(), nil
}
