// Package sat3 provides the 3-satisfiability substrate for reproducing the
// paper's Appendix A: a CNF representation, a complete DPLL solver used as
// ground truth, and the two reductions — Theorem 2 builds a MiniAda
// *program* whose sync graph has a deadlock cycle with pairwise
// unsequenceable head nodes iff the formula is satisfiable, and Theorem 3
// builds a raw *sync graph* with a constraint-1+2 cycle iff the formula is
// satisfiable.
package sat3

import (
	"fmt"
	"math/rand"
)

// Lit is a literal: +v for variable v, -v for its negation (v >= 1).
type Lit int

// Var returns the 1-based variable index.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Pos reports whether the literal is positive.
func (l Lit) Pos() bool { return l > 0 }

func (l Lit) String() string {
	if l < 0 {
		return fmt.Sprintf("~v%d", -l)
	}
	return fmt.Sprintf("v%d", l)
}

// Clause is a disjunction of exactly three literals.
type Clause [3]Lit

// Formula is a 3-CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

func (f *Formula) String() string {
	s := ""
	for i, c := range f.Clauses {
		if i > 0 {
			s += " & "
		}
		s += fmt.Sprintf("(%s|%s|%s)", c[0], c[1], c[2])
	}
	return s
}

// Validate checks literal ranges and that clauses do not repeat a variable
// (the reductions create one task per literal occurrence and rely on
// distinct variables within a clause).
func (f *Formula) Validate() error {
	if f.NumVars < 1 {
		return fmt.Errorf("sat3: formula needs at least one variable")
	}
	if len(f.Clauses) < 1 {
		return fmt.Errorf("sat3: formula needs at least one clause")
	}
	for i, c := range f.Clauses {
		seen := map[int]bool{}
		for _, l := range c {
			if l == 0 || l.Var() > f.NumVars {
				return fmt.Errorf("sat3: clause %d: literal %d out of range", i, l)
			}
			if seen[l.Var()] {
				return fmt.Errorf("sat3: clause %d repeats variable v%d", i, l.Var())
			}
			seen[l.Var()] = true
		}
	}
	return nil
}

// Eval reports whether assignment (1-based; true means the variable is
// set) satisfies the formula.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var()] == l.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Random generates a uniformly random 3-CNF formula with the given shape,
// with distinct variables inside each clause. Requires numVars >= 3.
func Random(rng *rand.Rand, numVars, numClauses int) *Formula {
	f := &Formula{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		perm := rng.Perm(numVars)
		var c Clause
		for j := 0; j < 3; j++ {
			v := perm[j] + 1
			if rng.Intn(2) == 0 {
				c[j] = Lit(-v)
			} else {
				c[j] = Lit(v)
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// Solve decides satisfiability with DPLL (unit propagation + pure-literal
// elimination + branching). It returns a satisfying assignment (1-based)
// when one exists.
func Solve(f *Formula) (bool, []bool) {
	assign := make([]int8, f.NumVars+1) // 0 unknown, 1 true, -1 false
	if !dpll(f, assign) {
		return false, nil
	}
	out := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = assign[v] == 1
	}
	return true, out
}

func litVal(assign []int8, l Lit) int8 {
	v := assign[l.Var()]
	if v == 0 {
		return 0
	}
	if (v == 1) == l.Pos() {
		return 1
	}
	return -1
}

func dpll(f *Formula, assign []int8) bool {
	// Unit propagation and conflict detection, to a fixed point.
	for {
		unitFound := false
		for _, c := range f.Clauses {
			unassigned := Lit(0)
			nUnassigned, satisfied := 0, false
			for _, l := range c {
				switch litVal(assign, l) {
				case 1:
					satisfied = true
				case 0:
					nUnassigned++
					unassigned = l
				}
			}
			if satisfied {
				continue
			}
			if nUnassigned == 0 {
				return false // conflict
			}
			if nUnassigned == 1 {
				if unassigned.Pos() {
					assign[unassigned.Var()] = 1
				} else {
					assign[unassigned.Var()] = -1
				}
				unitFound = true
			}
		}
		if !unitFound {
			break
		}
	}
	// Pure literal elimination.
	posSeen := make([]bool, f.NumVars+1)
	negSeen := make([]bool, f.NumVars+1)
	for _, c := range f.Clauses {
		satisfied := false
		for _, l := range c {
			if litVal(assign, l) == 1 {
				satisfied = true
			}
		}
		if satisfied {
			continue
		}
		for _, l := range c {
			if litVal(assign, l) == 0 {
				if l.Pos() {
					posSeen[l.Var()] = true
				} else {
					negSeen[l.Var()] = true
				}
			}
		}
	}
	for v := 1; v <= f.NumVars; v++ {
		if assign[v] != 0 {
			continue
		}
		if posSeen[v] && !negSeen[v] {
			assign[v] = 1
		} else if negSeen[v] && !posSeen[v] {
			assign[v] = -1
		}
	}
	// Pick a branching variable from an unsatisfied clause.
	branch := 0
	allSat := true
	for _, c := range f.Clauses {
		satisfied := false
		for _, l := range c {
			if litVal(assign, l) == 1 {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		allSat = false
		for _, l := range c {
			if litVal(assign, l) == 0 {
				branch = l.Var()
				break
			}
		}
		if branch != 0 {
			break
		}
		return false // unsatisfied clause with no free literal
	}
	if allSat {
		return true
	}
	saved := append([]int8(nil), assign...)
	assign[branch] = 1
	if dpll(f, assign) {
		return true
	}
	copy(assign, saved)
	assign[branch] = -1
	if dpll(f, assign) {
		return true
	}
	copy(assign, saved)
	return false
}
