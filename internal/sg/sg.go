// Package sg implements the sync graph, the paper's static program
// representation (§2): SG_P = (T, N, E_C, E_S) where N holds one node per
// rendezvous statement plus the distinguished begin node b and end node e,
// E_C holds directed control-flow edges between rendezvous points that some
// control path connects without intervening rendezvous, and E_S holds an
// undirected sync edge between every pair of complementary rendezvous
// points of the same signal type.
package sg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/graph"
	"repro/internal/lang"
)

// Node is a sync graph node. ID 0 is always b and ID 1 is always e; b and e
// are shared by all tasks, so their Task is empty.
type Node struct {
	ID    int
	Task  string
	Kind  cfg.NodeKind
	Sig   lang.Signal
	Label string
}

// IsRendezvous reports whether the node is a send or accept.
func (n *Node) IsRendezvous() bool {
	return n.Kind == cfg.KindSend || n.Kind == cfg.KindAccept
}

// Complementary reports whether nodes n and m form a matching signal pair:
// same signal type, opposite signs.
func (n *Node) Complementary(m *Node) bool {
	if n.Sig != m.Sig {
		return false
	}
	return (n.Kind == cfg.KindSend && m.Kind == cfg.KindAccept) ||
		(n.Kind == cfg.KindAccept && m.Kind == cfg.KindSend)
}

func (n *Node) String() string {
	switch n.Kind {
	case cfg.KindEntry:
		return "b"
	case cfg.KindExit:
		return "e"
	case cfg.KindSend:
		return fmt.Sprintf("%s:(%s,%s,+)", n.Label, n.Sig.Task, n.Sig.Msg)
	default:
		return fmt.Sprintf("%s:(%s,%s,-)", n.Label, n.Sig.Task, n.Sig.Msg)
	}
}

// Graph is the sync graph of a program.
type Graph struct {
	Prog    *lang.Program
	Nodes   []*Node
	B, E    int            // ids of the distinguished nodes (always 0, 1)
	Control *graph.Digraph // E_C, directed, over node ids
	Sync    [][]int        // E_S adjacency, undirected, over node ids

	Tasks      []string // task names in program order
	TaskOf     []int    // node id -> task index; -1 for b and e
	taskNodes  [][]int  // task index -> node ids (rendezvous only)
	skipToExit []bool   // task index -> CFG had a direct entry->exit edge
	byLabel    map[string]int
}

// Build parses nothing: it constructs the sync graph from per-task CFGs.
func Build(pc *cfg.ProgramCFG) *Graph {
	g := &Graph{
		Prog:    pc.Prog,
		Control: graph.New(2),
		byLabel: map[string]int{},
	}
	g.Nodes = []*Node{{ID: 0, Kind: cfg.KindEntry}, {ID: 1, Kind: cfg.KindExit}}
	g.B, g.E = 0, 1
	g.TaskOf = []int{-1, -1}

	// Create rendezvous nodes task by task; remember CFG-id -> SG-id maps.
	maps := make([][]int, len(pc.Tasks))
	for ti, tc := range pc.Tasks {
		g.Tasks = append(g.Tasks, tc.Task)
		m := make([]int, len(tc.Nodes))
		for i := range m {
			m[i] = -1
		}
		m[tc.Entry] = g.B
		m[tc.Exit] = g.E
		var ids []int
		for _, n := range tc.Nodes {
			if n.Kind != cfg.KindSend && n.Kind != cfg.KindAccept {
				continue
			}
			id := len(g.Nodes)
			g.Nodes = append(g.Nodes, &Node{
				ID: id, Task: tc.Task, Kind: n.Kind, Sig: n.Sig, Label: n.Label,
			})
			g.TaskOf = append(g.TaskOf, ti)
			m[n.ID] = id
			ids = append(ids, id)
			if n.Label != "" {
				g.byLabel[n.Label] = id
			}
		}
		maps[ti] = m
		g.taskNodes = append(g.taskNodes, ids)
		g.skipToExit = append(g.skipToExit, tc.G.HasEdge(tc.Entry, tc.Exit))
	}

	// Control edges.
	g.Control.EnsureNode(len(g.Nodes) - 1)
	for ti, tc := range pc.Tasks {
		m := maps[ti]
		for u := 0; u < tc.G.N(); u++ {
			for _, v := range tc.G.Succ(u) {
				g.Control.AddEdgeUnique(m[u], m[v])
			}
		}
	}

	// Sync edges: every complementary pair of the same signal type.
	g.Sync = make([][]int, len(g.Nodes))
	type ends struct{ plus, minus []int }
	bySig := map[lang.Signal]*ends{}
	for _, n := range g.Nodes {
		if !n.IsRendezvous() {
			continue
		}
		e := bySig[n.Sig]
		if e == nil {
			e = &ends{}
			bySig[n.Sig] = e
		}
		if n.Kind == cfg.KindSend {
			e.plus = append(e.plus, n.ID)
		} else {
			e.minus = append(e.minus, n.ID)
		}
	}
	for _, e := range bySig {
		for _, p := range e.plus {
			for _, m := range e.minus {
				g.Sync[p] = append(g.Sync[p], m)
				g.Sync[m] = append(g.Sync[m], p)
			}
		}
	}
	for _, adj := range g.Sync {
		sort.Ints(adj)
	}
	return g
}

// FromProgram builds CFGs and then the sync graph in one step.
func FromProgram(p *lang.Program) (*Graph, error) {
	pc, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	return Build(pc), nil
}

// MustFromProgram panics on error; for tests and fixed examples.
func MustFromProgram(p *lang.Program) *Graph {
	g, err := FromProgram(p)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes including b and e.
func (g *Graph) N() int { return len(g.Nodes) }

// NumRendezvous counts the send and accept nodes, derived from each
// node's own kind rather than assuming a fixed number of virtual nodes.
// Reporting code must use this instead of N()-2, so graphs with different
// virtual-node accounting can never misreport.
func (g *Graph) NumRendezvous() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.IsRendezvous() {
			n++
		}
	}
	return n
}

// NumSyncEdges counts undirected sync edges.
func (g *Graph) NumSyncEdges() int {
	n := 0
	for _, adj := range g.Sync {
		n += len(adj)
	}
	return n / 2
}

// NumControlEdges counts directed control edges.
func (g *Graph) NumControlEdges() int { return g.Control.M() }

// SizeBytes approximates the graph's resident footprint (nodes, labels,
// control and sync adjacency), for byte-budgeted caches. Proportional,
// not exact.
func (g *Graph) SizeBytes() int64 {
	sz := int64(len(g.Nodes)) * 128 // Node structs + pointers + label strings
	sz += int64(g.Control.M()+g.NumSyncEdges()*2) * 8
	sz += int64(len(g.TaskOf)+len(g.skipToExit)) * 8
	for _, nodes := range g.taskNodes {
		sz += int64(len(nodes)) * 8
	}
	return sz
}

// TaskNodes returns the rendezvous node ids of task index ti.
func (g *Graph) TaskNodes(ti int) []int { return g.taskNodes[ti] }

// TaskIndex returns the index of the named task, or -1.
func (g *Graph) TaskIndex(name string) int {
	for i, t := range g.Tasks {
		if t == name {
			return i
		}
	}
	return -1
}

// NodeByLabel resolves a rendezvous statement label to its node id, or -1.
func (g *Graph) NodeByLabel(label string) int {
	if id, ok := g.byLabel[label]; ok {
		return id
	}
	return -1
}

// RemoveSyncEdges deletes the given undirected sync edges (pairs in
// either orientation), returning how many existed. Feasibility
// refinements (order.InfeasibleSyncPairs) use this before analysis.
func (g *Graph) RemoveSyncEdges(pairs [][2]int) int {
	drop := map[[2]int]bool{}
	for _, p := range pairs {
		drop[[2]int{p[0], p[1]}] = true
		drop[[2]int{p[1], p[0]}] = true
	}
	removed := 0
	for u := range g.Sync {
		kept := g.Sync[u][:0]
		for _, v := range g.Sync[u] {
			if drop[[2]int{u, v}] {
				removed++
				continue
			}
			kept = append(kept, v)
		}
		g.Sync[u] = kept
	}
	return removed / 2
}

// HasSyncEdge reports whether {u, v} is in E_S.
func (g *Graph) HasSyncEdge(u, v int) bool {
	adj := g.Sync[u]
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// InitialNodes returns task ti's possible first wave entries: the control
// successors of b belonging to the task, plus e when the task's CFG allows
// reaching the end without any rendezvous (paper: W_INIT[u] may be e when
// there is a control flow edge (b, e) in task u). Because b and e are
// shared nodes, the per-task b->e information is kept separately.
func (g *Graph) InitialNodes(ti int) []int {
	var out []int
	for _, v := range g.Control.Succ(g.B) {
		if v != g.E && g.TaskOf[v] == ti {
			out = append(out, v)
		}
	}
	if g.skipToExit[ti] {
		out = append(out, g.E)
	}
	return out
}

// DOT renders the sync graph in Graphviz format: solid arrows are control
// edges, dashed lines are sync edges.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("graph sync {\n  rankdir=TB;\n")
	for _, n := range g.Nodes {
		label := n.String()
		b.WriteString(fmt.Sprintf("  n%d [label=%q];\n", n.ID, label))
	}
	for u := 0; u < g.Control.N(); u++ {
		for _, v := range g.Control.Succ(u) {
			b.WriteString(fmt.Sprintf("  n%d -- n%d [dir=forward];\n", u, v))
		}
	}
	for u, adj := range g.Sync {
		for _, v := range adj {
			if u < v {
				b.WriteString(fmt.Sprintf("  n%d -- n%d [style=dashed];\n", u, v))
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
