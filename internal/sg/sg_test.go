package sg

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/lang"
)

const handshake = `
task t1 is
begin
  r: t2.sig1;
  s: accept sig2;
end;
task t2 is
begin
  u: accept sig1;
  v: t1.sig2;
end;
`

func TestBuildHandshake(t *testing.T) {
	g := MustFromProgram(lang.MustParse(handshake))
	if g.N() != 6 { // b, e, r, s, u, v
		t.Fatalf("N=%d", g.N())
	}
	if g.B != 0 || g.E != 1 {
		t.Fatal("distinguished ids moved")
	}
	r, s, u, v := g.NodeByLabel("r"), g.NodeByLabel("s"), g.NodeByLabel("u"), g.NodeByLabel("v")
	for _, id := range []int{r, s, u, v} {
		if id < 0 {
			t.Fatal("label lookup failed")
		}
	}
	// Signal types.
	if g.Nodes[r].Sig != (lang.Signal{Task: "t2", Msg: "sig1"}) || g.Nodes[r].Kind != cfg.KindSend {
		t.Fatalf("r=%v", g.Nodes[r])
	}
	if g.Nodes[s].Sig != (lang.Signal{Task: "t1", Msg: "sig2"}) || g.Nodes[s].Kind != cfg.KindAccept {
		t.Fatalf("s=%v", g.Nodes[s])
	}
	// Sync edges: {r,u} and {s,v} only.
	if g.NumSyncEdges() != 2 {
		t.Fatalf("sync edges=%d", g.NumSyncEdges())
	}
	if !g.HasSyncEdge(r, u) || !g.HasSyncEdge(s, v) || g.HasSyncEdge(r, v) {
		t.Fatal("sync edge wiring wrong")
	}
	// Control: b->r->s->e; b->u->v->e.
	for _, e := range [][2]int{{g.B, r}, {r, s}, {s, g.E}, {g.B, u}, {u, v}, {v, g.E}} {
		if !g.Control.HasEdge(e[0], e[1]) {
			t.Fatalf("control edge %v missing", e)
		}
	}
	if g.NumControlEdges() != 6 {
		t.Fatalf("control edges=%d", g.NumControlEdges())
	}
}

func TestComplementary(t *testing.T) {
	g := MustFromProgram(lang.MustParse(handshake))
	r, u := g.Nodes[g.NodeByLabel("r")], g.Nodes[g.NodeByLabel("u")]
	s := g.Nodes[g.NodeByLabel("s")]
	if !r.Complementary(u) || !u.Complementary(r) {
		t.Fatal("complementary pair not recognized")
	}
	if r.Complementary(s) {
		t.Fatal("different signals marked complementary")
	}
}

func TestManyToManySyncEdges(t *testing.T) {
	g := MustFromProgram(lang.MustParse(`
task a is
begin
  b.m;
  b.m;
end;
task b is
begin
  accept m;
  accept m;
end;
`))
	// 2 sends x 2 accepts = 4 edges.
	if g.NumSyncEdges() != 4 {
		t.Fatalf("sync edges=%d, want 4", g.NumSyncEdges())
	}
}

func TestTaskOfAndTaskNodes(t *testing.T) {
	g := MustFromProgram(lang.MustParse(handshake))
	t1 := g.TaskIndex("t1")
	if t1 < 0 || g.TaskIndex("nope") != -1 {
		t.Fatal("TaskIndex wrong")
	}
	nodes := g.TaskNodes(t1)
	if len(nodes) != 2 {
		t.Fatalf("t1 nodes=%v", nodes)
	}
	for _, id := range nodes {
		if g.TaskOf[id] != t1 {
			t.Fatal("TaskOf inconsistent")
		}
	}
}

func TestInitialNodes(t *testing.T) {
	g := MustFromProgram(lang.MustParse(`
task a is
begin
  if c then
    b.m;
  else
    b.n;
  end if;
end;
task b is
begin
  accept m;
  accept n;
end;
task idle is
begin
  null;
end;
`))
	ai := g.TaskIndex("a")
	init := g.InitialNodes(ai)
	if len(init) != 2 {
		t.Fatalf("a initial=%v, want both branch sends", init)
	}
	idle := g.TaskIndex("idle")
	init = g.InitialNodes(idle)
	if len(init) != 1 || init[0] != g.E {
		t.Fatalf("idle initial=%v, want [e]", init)
	}
	// Conditional-skip task: can start at first node or at e.
	g2 := MustFromProgram(lang.MustParse(`
task a is
begin
  if c then
    b.m;
  end if;
end;
task b is
begin
  accept m;
end;
`))
	init = g2.InitialNodes(g2.TaskIndex("a"))
	hasE := false
	for _, v := range init {
		if v == g2.E {
			hasE = true
		}
	}
	if len(init) != 2 || !hasE {
		t.Fatalf("skippable task initial=%v", init)
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder()
	ta := b.AddTask("A")
	tb := b.AddTask("B")
	n1 := b.AddNode(ta, cfg.KindAccept, lang.Signal{Task: "A", Msg: "m"}, "n1")
	n2 := b.AddNode(tb, cfg.KindSend, lang.Signal{Task: "A", Msg: "m"}, "n2")
	b.AddControl(b.B(), n1)
	b.AddControl(n1, b.E())
	b.AddControl(b.B(), n2)
	b.AddControl(n2, b.E())
	b.SyncPair(n1, n2)
	g := b.Finish()
	if !g.HasSyncEdge(n1, n2) || !g.HasSyncEdge(n2, n1) {
		t.Fatal("builder sync edge missing")
	}
	if g.NodeByLabel("n1") != n1 {
		t.Fatal("builder label lookup broken")
	}
	if g.TaskOf[n1] != ta || g.TaskOf[n2] != tb {
		t.Fatal("builder TaskOf wrong")
	}
}

func TestDOTOutput(t *testing.T) {
	g := MustFromProgram(lang.MustParse(handshake))
	dot := g.DOT()
	for _, want := range []string{"graph sync", "style=dashed", "dir=forward"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestUnrolledLoopGraphIsAcyclic(t *testing.T) {
	p := lang.MustParse(`
task a is
begin
  while w loop
    b.m;
    accept q;
  end loop;
end;
task b is
begin
  loop
    accept m;
    a.q;
  end loop;
end;
`)
	g := MustFromProgram(cfg.Unroll(p))
	if cyc, _ := g.Control.HasCycle(); cyc {
		t.Fatal("unrolled sync graph has control cycles")
	}
	// The raw program's graph does have cycles.
	g2 := MustFromProgram(p)
	if cyc, _ := g2.Control.HasCycle(); !cyc {
		t.Fatal("loopy program lost its control cycle")
	}
}
