package sg

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/graph"
	"repro/internal/lang"
)

// Builder assembles a sync graph node by node, for graphs that do not come
// from a program — the paper's Theorem 3 reduction builds one whose sync
// edges cannot all be realized by code (a sync edge between two accepts),
// and unit tests use it for hand-drawn figures.
type Builder struct {
	g     *Graph
	pairs [][2]int
}

// NewBuilder returns an empty builder holding only the b and e nodes.
func NewBuilder() *Builder {
	g := &Graph{
		Control: graph.New(2),
		byLabel: map[string]int{},
	}
	g.Nodes = []*Node{{ID: 0, Kind: cfg.KindEntry}, {ID: 1, Kind: cfg.KindExit}}
	g.B, g.E = 0, 1
	g.TaskOf = []int{-1, -1}
	return &Builder{g: g}
}

// AddTask declares a task and returns its index.
func (b *Builder) AddTask(name string) int {
	b.g.Tasks = append(b.g.Tasks, name)
	b.g.taskNodes = append(b.g.taskNodes, nil)
	b.g.skipToExit = append(b.g.skipToExit, false)
	return len(b.g.Tasks) - 1
}

// AddNode creates a rendezvous node in task ti and returns its id.
func (b *Builder) AddNode(ti int, kind cfg.NodeKind, sig lang.Signal, label string) int {
	id := len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, &Node{
		ID: id, Task: b.g.Tasks[ti], Kind: kind, Sig: sig, Label: label,
	})
	b.g.TaskOf = append(b.g.TaskOf, ti)
	b.g.taskNodes[ti] = append(b.g.taskNodes[ti], id)
	if label != "" {
		b.g.byLabel[label] = id
	}
	b.g.Control.EnsureNode(id)
	return id
}

// AddControl inserts a directed control edge; use B() and E() for the
// distinguished endpoints.
func (b *Builder) AddControl(u, v int) { b.g.Control.AddEdgeUnique(u, v) }

// SyncPair records an undirected sync edge; edges are materialized by
// Finish.
func (b *Builder) SyncPair(u, v int) { b.pairs = append(b.pairs, [2]int{u, v}) }

// B returns the distinguished begin node id.
func (b *Builder) B() int { return b.g.B }

// E returns the distinguished end node id.
func (b *Builder) E() int { return b.g.E }

// Finish materializes sync adjacency and returns the graph.
func (b *Builder) Finish() *Graph {
	g := b.g
	g.Sync = make([][]int, len(g.Nodes))
	for _, p := range b.pairs {
		g.Sync[p[0]] = append(g.Sync[p[0]], p[1])
		g.Sync[p[1]] = append(g.Sync[p[1]], p[0])
	}
	for i := range g.Sync {
		sort.Ints(g.Sync[i])
	}
	return g
}
