package siwa

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/waves"
	"repro/internal/workload"
)

// TestLimitsRejectUnrollBomb is the end-to-end regression test for the
// Lemma 1 blowup: a 20-deep nested-loop program would unroll to ~2^21
// rendezvous statements, and Analyze under DefaultLimits must refuse it
// with a typed *ResourceError in well under a second, because the size is
// predicted arithmetically rather than allocated.
func TestLimitsRejectUnrollBomb(t *testing.T) {
	bomb := workload.NestedLoops(20, 2)
	start := time.Now()
	_, err := Analyze(bomb, Options{Limits: DefaultLimits()})
	elapsed := time.Since(start)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err=%v, want *ResourceError", err)
	}
	if re.Resource != "unrolled rendezvous nodes" {
		t.Fatalf("resource=%q", re.Resource)
	}
	if elapsed > time.Second {
		t.Fatalf("rejection took %v; the bomb was materialized", elapsed)
	}
	// Without limits the same program is accepted (and is why servers set
	// them) — prove the gate is the limit, not the program, on a smaller
	// sibling that is still cheap to actually unroll.
	if _, err := Analyze(workload.NestedLoops(6, 2), Options{Limits: DefaultLimits()}); err != nil {
		t.Fatalf("in-budget nest rejected: %v", err)
	}
}

func TestLimitsRejectTasksAndNodes(t *testing.T) {
	p := MustParse(`
task a is begin b.m; end;
task b is begin accept m; end;
`)
	_, err := Analyze(p, Options{Limits: Limits{MaxTasks: 1}})
	var re *ResourceError
	if !errors.As(err, &re) || re.Resource != "tasks" {
		t.Fatalf("err=%v, want tasks ResourceError", err)
	}
	_, err = Analyze(p, Options{Limits: Limits{MaxNodes: 1}})
	if !errors.As(err, &re) || re.Resource != "rendezvous nodes" {
		t.Fatalf("err=%v, want rendezvous nodes ResourceError", err)
	}
	// Zero-value limits keep the historical unbounded behaviour.
	if _, err := Analyze(p, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestStagePanicContained injects a panic into a mid-pipeline stage and
// requires a typed *InternalError naming the stage, with the stack from
// the panic site — never a crash, never a silent success.
func TestStagePanicContained(t *testing.T) {
	defer fault.Reset()
	fault.Set("analyze.sync-graph", fault.Mode{Kind: fault.KindPanic})
	p := MustParse("task a is begin accept m; end; task b is begin a.m; end;")
	rep, err := Analyze(p, Options{})
	if rep != nil {
		t.Fatal("panicked analysis returned a report")
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err=%v, want *InternalError", err)
	}
	if ie.Stage != "sync-graph" {
		t.Fatalf("stage=%q", ie.Stage)
	}
	if ie.Stack == "" || !strings.Contains(ie.Stack, "goroutine") {
		t.Fatal("no stack captured")
	}
	if inj, ok := ie.Value.(fault.Injected); !ok || inj.Point != "analyze.sync-graph" {
		t.Fatalf("panic value %v", ie.Value)
	}
	// After the fault clears, the same program analyzes normally.
	fault.Reset()
	if _, err := Analyze(p, Options{}); err != nil {
		t.Fatalf("post-fault analysis failed: %v", err)
	}
}

func TestParsePanicContained(t *testing.T) {
	defer fault.Reset()
	fault.Set("parse", fault.Mode{Kind: fault.KindPanic})
	_, err := Parse("task a is begin accept m; end;")
	var ie *InternalError
	if !errors.As(err, &ie) || ie.Stage != "parse" {
		t.Fatalf("err=%v, want parse InternalError", err)
	}
}

// TestDegradeExactBudget: with Degrade set, an exact exploration that hits
// its state budget yields a degraded-but-sound report instead of losing
// the run — the polynomial verdicts are present and the report says which
// stage gave up and why.
func TestDegradeExactBudget(t *testing.T) {
	p := workload.ForkFan(6, 4)
	rep, err := Analyze(p, Options{
		Algorithm:    AlgoRefined,
		Exact:        true,
		ExactOptions: waves.Options{MaxStates: 64},
		Degrade:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("budget-truncated exact run not marked degraded")
	}
	if len(rep.DegradedReasons) == 0 || !strings.Contains(rep.DegradedReasons[0], "state budget") {
		t.Fatalf("reasons: %v", rep.DegradedReasons)
	}
	if rep.Exact == nil || !rep.Exact.Truncated {
		t.Fatalf("exact: %+v", rep.Exact)
	}
	// The polynomial verdicts survived the degradation.
	if rep.Deadlock.Algorithm != AlgoRefined {
		t.Fatalf("deadlock verdict missing: %+v", rep.Deadlock)
	}
	if rep.Stall == nil {
		t.Fatal("stall verdict missing from degraded report")
	}
	// The degradation is visible in both projections.
	if !strings.Contains(rep.Summary(), "DEGRADED") {
		t.Fatalf("summary silent about degradation:\n%s", rep.Summary())
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var jr JSONReport
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	if !jr.Degraded || len(jr.DegradedReasons) == 0 {
		t.Fatalf("JSON projection lost degradation: %s", data)
	}
}

// TestDegradeExactDeadline: a deadline that expires during the exact wave
// exploration degrades (carrying the refined verdict) instead of erroring.
func TestDegradeExactDeadline(t *testing.T) {
	// Exponential wave space; the polynomial stages finish in microseconds.
	p := workload.ForkFan(8, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	rep, err := AnalyzeContext(ctx, p, Options{
		Algorithm: AlgoRefined,
		Exact:     true,
		Degrade:   true,
	})
	if err != nil {
		t.Fatalf("degrade mode returned error: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("deadline-hit exact run not marked degraded")
	}
	if rep.Deadlock.Algorithm != AlgoRefined {
		t.Fatalf("refined verdict missing: %+v", rep.Deadlock)
	}
	// Without Degrade, the identical run is an error wrapping the deadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel2()
	if _, err := AnalyzeContext(ctx2, p, Options{Algorithm: AlgoRefined, Exact: true}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded", err)
	}
}

// TestDegradeNeverAltersVerdicts: on a program every stage finishes for,
// Degrade must be a no-op — same verdicts, not marked degraded.
func TestDegradeNeverAltersVerdicts(t *testing.T) {
	p := workload.Ring(4)
	plain, err := Analyze(p, Options{Algorithm: AlgoRefined, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	soft, err := Analyze(p, Options{Algorithm: AlgoRefined, Exact: true, Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if soft.Degraded {
		t.Fatal("completed run marked degraded")
	}
	if plain.Deadlock.MayDeadlock != soft.Deadlock.MayDeadlock ||
		plain.Exact.Deadlock != soft.Exact.Deadlock {
		t.Fatal("Degrade changed verdicts on a completed run")
	}
}

func TestParseLimitsSpellings(t *testing.T) {
	base := DefaultLimits()
	cases := []struct {
		spec string
		want Limits
		ok   bool
	}{
		{"", base, true},
		{"off", Limits{}, true},
		{"none", Limits{}, true},
		{"default", DefaultLimits(), true},
		{"tasks=9", Limits{MaxTasks: 9, MaxNodes: base.MaxNodes, MaxUnrolledNodes: base.MaxUnrolledNodes}, true},
		{"tasks=1,nodes=2,unrolled=3", Limits{1, 2, 3}, true},
		{" tasks=4 , unrolled=5 ", Limits{4, base.MaxNodes, 5}, true},
		{"bogus=1", Limits{}, false},
		{"tasks", Limits{}, false},
		{"tasks=x", Limits{}, false},
	}
	for _, c := range cases {
		got, err := ParseLimits(c.spec, base)
		if c.ok != (err == nil) {
			t.Errorf("%q: err=%v", c.spec, err)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("%q: got %+v, want %+v", c.spec, got, c.want)
		}
	}
	// String round-trips through ParseLimits.
	l := Limits{7, 8, 9}
	back, err := ParseLimits(l.String(), Limits{})
	if err != nil || back != l {
		t.Fatalf("round-trip: %+v err=%v", back, err)
	}
}
