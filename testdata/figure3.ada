-- Figure 3: the r,s,t,u cycle survives constraints 1-3 but task W always
-- breaks it; only the constraint-4 certifier (-c4) proves freedom.
task T1 is
begin
  r: accept mr;
  s: T2.mt;
end;

task T2 is
begin
  t: accept mt;
  u: T1.mr;
  v: accept mt;
end;

task W is
begin
  w: T2.mt;
end;
