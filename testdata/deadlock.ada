-- Figure 2(b): both tasks accept first; deadlocks in every execution.
task t1 is
begin
  accept sig1;
  t2.sig2;
end;

task t2 is
begin
  accept sig2;
  t1.sig1;
end;
