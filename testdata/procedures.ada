-- Interprocedural handshake: the rendezvous live inside a procedure that
-- is inlined into the calling task before analysis. Deadlock-free.
procedure exchange is
begin
  peer.ping;
  accept pong;
end;

task me is
begin
  call exchange;
end;

task peer is
begin
  accept ping;
  me.pong;
end;
