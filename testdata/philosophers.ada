-- Three dining philosophers, all right-handed: circular wait.
task phil0 is
begin
  phil1.fork;
  accept fork;
end;

task phil1 is
begin
  phil2.fork;
  accept fork;
end;

task phil2 is
begin
  phil0.fork;
  accept fork;
end;
