-- Figure 2(a): after the go rendezvous, t2 waits on an accept nobody can
-- ever signal. Caught by the Lemma 3/4 balance analysis.
task t1 is
begin
  accept go;
end;

task t2 is
begin
  t1.go;
  accept done;
end;
