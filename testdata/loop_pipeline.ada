-- Bounded-loop producer/filter/consumer pipeline: deadlock-free and
-- balanced; exercises the Lemma 1 twice-unroll path.
task producer is
begin
  loop 4 times
    filter.raw;
  end loop;
end;

task filter is
begin
  loop 4 times
    accept raw;
    consumer.cooked;
  end loop;
end;

task consumer is
begin
  loop 4 times
    accept cooked;
  end loop;
end;
