-- Canonical correct handshake: certified deadlock-free by every detector.
task t1 is
begin
  t2.sig1;
  accept sig2;
end;

task t2 is
begin
  accept sig1;
  t1.sig2;
end;
